//! Index-term learning (§5.3): `qScore`, `QF`, the combined `Score`, and
//! **Algorithm 1** — the incremental learning pass that updates per-term
//! statistics from only the queries that arrived since the last iteration.
//!
//! A naive reference implementation ([`naive_select`]) recomputes from the
//! full query history; a property test asserts both agree (the paper's
//! argument: `max(S₁∪S₂) = max(max S₁, max S₂)` and `QF` is cumulative).

use std::collections::HashMap;

use sprite_ir::{Document, Query, TermId};
use sprite_util::{top_k, F64Ord};

use crate::peer::TermStat;

/// `qScore(Q, D) = |Q ∩ D| / |Q|` — the fraction of the query's (distinct)
/// terms the document contains (§5.3). 0 for an empty query.
#[must_use]
pub fn q_score(query: &Query, doc: &Document) -> f64 {
    let distinct = query.term_counts();
    if distinct.is_empty() {
        return 0.0;
    }
    let matched = distinct.iter().filter(|(t, _)| doc.contains(*t)).count();
    matched as f64 / distinct.len() as f64
}

/// `Score(t, D) = qScore_max · log₁₀(QF)` — the combined term score of
/// §5.3. The paper's worked example (Figure 2(b): `0.75 · log 20 = 0.975`)
/// fixes the logarithm base at 10; a single occurrence (`QF = 1`) scores 0.
#[must_use]
pub fn term_score(stat: TermStat) -> f64 {
    term_score_with(stat, ScoreMode::Full)
}

/// Term-scoring variants for the ablation study of §5.3's design argument
/// ("it is insufficient to consider (1) alone … insufficient to consider
/// (2) alone").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScoreMode {
    /// The paper's combination: `qScore_max · log₁₀(QF)`.
    #[default]
    Full,
    /// Only the best query similarity (ignores how often terms are asked).
    QScoreOnly,
    /// Only the query frequency (ignores how well queries fit the doc).
    QfOnly,
}

/// [`term_score`] under an explicit [`ScoreMode`].
#[must_use]
pub fn term_score_with(stat: TermStat, mode: ScoreMode) -> f64 {
    if stat.qf == 0 {
        return 0.0;
    }
    match mode {
        ScoreMode::Full => stat.qs * (stat.qf as f64).log10(),
        ScoreMode::QScoreOnly => stat.qs,
        ScoreMode::QfOnly => (stat.qf as f64).log10(),
    }
}

/// Update `stats` in place from the incremental query set `new_queries`
/// (Algorithm 1, lines 4–11): for each document term occurring in a new
/// query, bump `QF` and keep the maximum `qScore`.
pub fn update_stats(doc: &Document, stats: &mut HashMap<TermId, TermStat>, new_queries: &[Query]) {
    for q in new_queries {
        let qs = q_score(q, doc);
        for (t, _) in q.term_counts() {
            if doc.contains(t) {
                let s = stats.entry(t).or_default();
                s.qf += 1;
                if qs > s.qs {
                    s.qs = qs;
                }
            }
        }
    }
}

/// Select the document's global index terms given its (already updated)
/// statistics: the top `budget` terms by [`term_score`], padded — when
/// fewer terms have a positive score — with the document's most frequent
/// terms (the same signal that seeded the index, §5.2). The returned list
/// is in rank order and free of duplicates.
#[must_use]
pub fn select_terms(
    doc: &Document,
    stats: &HashMap<TermId, TermStat>,
    budget: usize,
) -> Vec<TermId> {
    select_terms_excluding(doc, stats, budget, &std::collections::HashSet::new())
}

/// [`select_terms`] with a veto set: terms in `excluded` are never chosen
/// (the §7 hot-term advisory — a peer overloaded by a high-df term tells
/// owners to index an analogously important term instead).
#[must_use]
pub fn select_terms_excluding(
    doc: &Document,
    stats: &HashMap<TermId, TermStat>,
    budget: usize,
    excluded: &std::collections::HashSet<TermId>,
) -> Vec<TermId> {
    select_terms_mode(doc, stats, budget, excluded, ScoreMode::Full)
}

/// [`select_terms_excluding`] under an explicit [`ScoreMode`] (ablation).
#[must_use]
pub fn select_terms_mode(
    doc: &Document,
    stats: &HashMap<TermId, TermStat>,
    budget: usize,
    excluded: &std::collections::HashSet<TermId>,
    mode: ScoreMode,
) -> Vec<TermId> {
    // Every queried term (QF ≥ 1) is a candidate: `log₁₀(1) = 0`, but a
    // term that was queried at all is better evidence than an unqueried
    // frequent term (§3's term `c` "is not indexed because it has not been
    // used in any query"). Ties on the mode's primary signal — in
    // particular all QF = 1 terms under the paper's Score — are broken by
    // the mode's own secondary statistic, then by in-document frequency,
    // so sparse query histories still rank meaningfully.
    let ranked = top_k(
        budget,
        stats.iter().filter_map(|(&t, &s)| {
            if excluded.contains(&t) || s.qf == 0 {
                return None;
            }
            let score = term_score_with(s, mode);
            let tiebreak = match mode {
                ScoreMode::Full | ScoreMode::QScoreOnly => s.qs,
                ScoreMode::QfOnly => s.qf as f64,
            };
            Some(((F64Ord(score), F64Ord(tiebreak), doc.freq(t)), t))
        }),
    );
    let mut chosen: Vec<TermId> = ranked.into_iter().map(|s| s.item).collect();
    if chosen.len() < budget {
        for t in doc.top_frequent_terms(budget + chosen.len() + excluded.len()) {
            if chosen.len() == budget {
                break;
            }
            if !chosen.contains(&t) && !excluded.contains(&t) {
                chosen.push(t);
            }
        }
    }
    chosen
}

/// One full incremental learning step (Algorithm 1): absorb `new_queries`
/// into `stats`, then pick the top `budget` terms.
#[must_use]
pub fn algorithm1(
    doc: &Document,
    stats: &mut HashMap<TermId, TermStat>,
    new_queries: &[Query],
    budget: usize,
) -> Vec<TermId> {
    update_stats(doc, stats, new_queries);
    select_terms(doc, stats, budget)
}

/// Naive reference (§5.3's "basic idea"): recompute every statistic from
/// the complete query history. Semantically equal to running
/// [`algorithm1`] over the same history split into arbitrary batches.
#[must_use]
pub fn naive_select(doc: &Document, all_queries: &[Query], budget: usize) -> Vec<TermId> {
    let mut stats = HashMap::new();
    update_stats(doc, &mut stats, all_queries);
    select_terms(doc, &stats, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_ir::DocId;

    fn doc(terms: &[(u32, u32)]) -> Document {
        Document::new(
            DocId(0),
            terms.iter().map(|&(t, c)| (TermId(t), c)).collect(),
        )
    }

    fn q(terms: &[u32]) -> Query {
        Query::new(terms.iter().map(|&t| TermId(t)).collect())
    }

    #[test]
    fn q_score_counts_matching_fraction() {
        let d = doc(&[(1, 5), (2, 3), (3, 1)]);
        assert!((q_score(&q(&[1, 2]), &d) - 1.0).abs() < 1e-12);
        assert!((q_score(&q(&[1, 9]), &d) - 0.5).abs() < 1e-12);
        assert!((q_score(&q(&[7, 8, 9]), &d) - 0.0).abs() < 1e-12);
        assert_eq!(q_score(&Query::default(), &d), 0.0);
        // Duplicates in the query count once.
        assert!((q_score(&q(&[1, 1, 9, 9]), &d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn term_score_matches_paper_example() {
        // Figure 2(b): qs=0.75, QF=20 → 0.975; qs=0.75, QF=5 → 0.524;
        // qs=0.33, QF=30 → 0.492.
        assert!((term_score(TermStat { qs: 0.75, qf: 20 }) - 0.9752).abs() < 1e-3);
        assert!((term_score(TermStat { qs: 0.75, qf: 5 }) - 0.5242).abs() < 1e-3);
        assert!((term_score(TermStat { qs: 0.33, qf: 30 }) - 0.4875).abs() < 1e-3);
        assert_eq!(term_score(TermStat { qs: 0.9, qf: 1 }), 0.0);
        assert_eq!(term_score(TermStat { qs: 0.9, qf: 0 }), 0.0);
    }

    #[test]
    fn paper_figure_2b_replacement() {
        // Time i: t1 (0.75, 20), t2 (0.75, 5), t5 (0.33, 30) indexed, cap 3.
        // Three new queries arrive; afterwards t3 reaches (0.75, 5) and t5
        // moves to (0.33, 32); t3's 0.524 beats t5's 0.501 → t5 replaced.
        let d = doc(&[(1, 9), (2, 8), (3, 7), (5, 6)]);
        let mut stats: HashMap<TermId, TermStat> = HashMap::new();
        stats.insert(TermId(1), TermStat { qs: 0.75, qf: 20 });
        stats.insert(TermId(2), TermStat { qs: 0.75, qf: 5 });
        stats.insert(TermId(5), TermStat { qs: 0.33, qf: 30 });
        stats.insert(TermId(3), TermStat { qs: 0.75, qf: 3 });
        // Two more queries mention t3; two mention t5 with low qScore.
        // Construct queries reproducing the target stats:
        //   t3: qf 3→5 keeping qs 0.75; t5: qf 30→32 keeping qs 0.33.
        // Query {3, x, y, z} with only t3 in doc gives qScore 0.25 ≤ 0.75.
        let new = vec![
            q(&[3, 100, 101, 102]),
            q(&[3, 5, 100, 101, 102, 103]),
            q(&[5, 100, 101]),
        ];
        let chosen = algorithm1(&d, &mut stats, &new, 3);
        assert_eq!(stats[&TermId(3)].qf, 5);
        assert_eq!(stats[&TermId(5)].qf, 32);
        assert!((stats[&TermId(3)].qs - 0.75).abs() < 1e-12);
        assert!(chosen.contains(&TermId(1)));
        assert!(chosen.contains(&TermId(2)) || chosen.contains(&TermId(3)));
        assert!(chosen.contains(&TermId(3)), "t3 should be indexed now");
        assert!(!chosen.contains(&TermId(5)), "t5 should be replaced");
    }

    #[test]
    fn update_stats_keeps_max_qscore() {
        let d = doc(&[(1, 2), (2, 2)]);
        let mut stats = HashMap::new();
        update_stats(&d, &mut stats, &[q(&[1, 9])]); // qs 0.5
        update_stats(&d, &mut stats, &[q(&[1, 2])]); // qs 1.0
        update_stats(&d, &mut stats, &[q(&[1, 8, 9])]); // qs ~0.33
        let s = stats[&TermId(1)];
        assert_eq!(s.qf, 3);
        assert!((s.qs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn select_pads_with_frequent_terms() {
        let d = doc(&[(1, 10), (2, 9), (3, 8), (4, 7)]);
        // Only term 3 has a positive score.
        let mut stats = HashMap::new();
        stats.insert(TermId(3), TermStat { qs: 0.5, qf: 10 });
        let chosen = select_terms(&d, &stats, 3);
        assert_eq!(chosen[0], TermId(3));
        // Padding: most frequent first (1, then 2).
        assert_eq!(&chosen[1..], [TermId(1), TermId(2)]);
    }

    #[test]
    fn select_respects_budget_and_dedups() {
        let d = doc(&[(1, 10), (2, 9)]);
        let mut stats = HashMap::new();
        stats.insert(TermId(1), TermStat { qs: 1.0, qf: 100 });
        stats.insert(TermId(2), TermStat { qs: 0.9, qf: 100 });
        let chosen = select_terms(&d, &stats, 1);
        assert_eq!(chosen, [TermId(1)]);
        let chosen2 = select_terms(&d, &stats, 5);
        assert_eq!(chosen2.len(), 2, "only 2 distinct terms exist");
        let set: std::collections::HashSet<_> = chosen2.iter().collect();
        assert_eq!(set.len(), chosen2.len());
    }

    #[test]
    fn incremental_equals_naive_on_batches() {
        let d = doc(&[(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)]);
        let history = vec![
            q(&[1, 2]),
            q(&[2, 3, 9]),
            q(&[1, 3]),
            q(&[4, 8]),
            q(&[1, 2, 3]),
            q(&[5, 1]),
            q(&[2]),
        ];
        let whole = naive_select(&d, &history, 3);
        // Same history in three uneven batches through Algorithm 1.
        let mut stats = HashMap::new();
        let _ = algorithm1(&d, &mut stats, &history[..2], 3);
        let _ = algorithm1(&d, &mut stats, &history[2..3], 3);
        let inc = algorithm1(&d, &mut stats, &history[3..], 3);
        assert_eq!(whole, inc);
    }
}
