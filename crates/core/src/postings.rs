//! Posting-list storage: plain entry vectors or delta-gap-compressed
//! blocks, behind one [`PostingList`] type.
//!
//! The huge scale tier (`SPRITE_SCALE=huge`, 100k+ peers) cannot afford
//! `Vec<IndexEntry>` per term: each entry burns 32 logical bytes where
//! the canonical wire encoding of §5.1 needs ~20 — and far less once
//! document ids are delta-encoded. The packed representation therefore
//! stores exactly the per-entry wire encoding of
//! [`crate::peer::posting_list_wire_size`] (gap-varint doc id, raw
//! 16-byte owner address, varint tf / doc-length / distinct-count),
//! reusing the canonical LEB128 codec from `sprite-util`. Readers
//! decode on the fly through [`PostingIter`]; nothing downstream —
//! ranking, replication, hand-over — can tell the representations
//! apart, and the `storage/packed` determinism stage in `sprite-audit`
//! holds both to bit-identical fingerprints.
//!
//! **Tombstones.** Document deletion marks entries dead instead of
//! re-encoding the list on the spot: each list carries a sorted side
//! vector of tombstoned document ids, [`PostingIter`] skips them, and
//! every live-facing accessor (`len`, `iter`, `to_entries`,
//! `wire_size`) sees only live entries. The physical reclaim happens in
//! [`PostingList::cleanup`], called by the lazy pass in
//! `maintenance_round`, which returns the reclaimed entries so the
//! caller can bill each one. The side-vector design is deliberately
//! identical across representations so message accounting is
//! bit-identical between plain and packed storage; for packed blocks it
//! additionally guarantees that a tombstone never rewrites encoded
//! bytes before the next cleanup watermark.
//!
//! **This module is the only place posting lists may be built.** A
//! `sprite-lint` rule bans `Vec<IndexEntry>` construction elsewhere so
//! every list flows through the sorted-insert invariant enforced here.

use sprite_util::{decode_varint, encode_varint, varint_len, RingId};

use sprite_ir::DocId;

use crate::peer::IndexEntry;

/// Logical bytes one plain in-memory entry occupies: u32 doc id +
/// 16-byte owner address + u32 tf + u32 doc-length + u32 distinct-count.
/// A constant — not `size_of::<IndexEntry>()` — so the memory-per-peer
/// metric is identical across compilers and never gates on layout.
pub const PLAIN_ENTRY_BYTES: u64 = 4 + 16 + 4 + 4 + 4;

/// One inverted list, sorted by document id with one entry per document,
/// stored either as plain entries or as a delta-gap-compressed block.
/// Either way a sorted tombstone vector marks dead documents awaiting
/// the lazy cleanup pass.
#[derive(Clone, Debug)]
pub enum PostingList {
    /// Plain decoded entries — the historical layout, and the layout of
    /// corruption-injected lists (which may violate the encoder's
    /// strictly-ascending precondition on purpose).
    Plain {
        /// Doc-sorted entries, live and tombstoned alike.
        entries: Vec<IndexEntry>,
        /// Sorted document ids of tombstoned entries.
        dead: Vec<u32>,
    },
    /// The per-entry wire encoding, concatenated. `count` entries;
    /// `last_doc` is the final (largest) document id, so in-order
    /// publishes append without touching earlier bytes.
    Packed {
        /// Concatenated per-entry encodings (no count prefix).
        bytes: Vec<u8>,
        /// Number of encoded entries, tombstoned ones included.
        count: u32,
        /// Document id of the last entry (meaningless when `count == 0`).
        last_doc: u32,
        /// Sorted document ids of tombstoned entries.
        dead: Vec<u32>,
    },
}

/// Append the per-entry encoding of `e` to `out`. `prev_doc` is the
/// preceding entry's document id (`None` for the first entry, which
/// stores its id absolutely).
fn encode_entry(e: &IndexEntry, prev_doc: Option<u32>, out: &mut Vec<u8>) {
    let doc = e.doc.index() as u64;
    let gap = match prev_doc {
        Some(p) => doc - u64::from(p),
        None => doc,
    };
    encode_varint(gap, out);
    out.extend_from_slice(&e.owner.0.to_be_bytes());
    encode_varint(u64::from(e.tf), out);
    encode_varint(u64::from(e.doc_len), out);
    encode_varint(u64::from(e.distinct), out);
}

/// Decode one entry starting at `at`; returns the entry and the offset
/// one past it. Packed bytes are self-produced, so failures are bugs.
fn decode_entry(bytes: &[u8], at: usize, prev_doc: Option<u32>) -> (IndexEntry, usize) {
    let (gap, at) = decode_varint(bytes, at).expect("packed postings: doc gap");
    let doc = match prev_doc {
        Some(p) => u64::from(p) + gap,
        None => gap,
    };
    let owner_end = at + 16;
    let owner = u128::from_be_bytes(
        bytes[at..owner_end]
            .try_into()
            .expect("packed postings: owner address"),
    );
    let (tf, at) = decode_varint(bytes, owner_end).expect("packed postings: tf");
    let (doc_len, at) = decode_varint(bytes, at).expect("packed postings: doc_len");
    let (distinct, at) = decode_varint(bytes, at).expect("packed postings: distinct");
    (
        IndexEntry {
            doc: DocId(doc as u32),
            owner: RingId(owner),
            tf: tf as u32,
            doc_len: doc_len as u32,
            distinct: distinct as u32,
        },
        at,
    )
}

impl PostingList {
    /// A fresh empty list in the requested representation.
    #[must_use]
    pub fn new(packed: bool) -> Self {
        if packed {
            PostingList::Packed {
                bytes: Vec::new(),
                count: 0,
                last_doc: 0,
                dead: Vec::new(),
            }
        } else {
            PostingList::Plain {
                entries: Vec::new(),
                dead: Vec::new(),
            }
        }
    }

    /// Build a list from doc-sorted entries in the requested
    /// representation. Callers guarantee sortedness (decoded lists, or
    /// the sorted-insert path); corruption injection passes
    /// `packed = false` so invalid lists are stored verbatim.
    #[must_use]
    pub fn from_entries(entries: Vec<IndexEntry>, packed: bool) -> Self {
        if !packed {
            return PostingList::Plain {
                entries,
                dead: Vec::new(),
            };
        }
        let mut bytes = Vec::new();
        let mut prev: Option<u32> = None;
        for e in &entries {
            encode_entry(e, prev, &mut bytes);
            prev = Some(e.doc.index() as u32);
        }
        PostingList::Packed {
            bytes,
            count: entries.len() as u32,
            last_doc: prev.unwrap_or(0),
            dead: Vec::new(),
        }
    }

    /// True when stored in the compressed representation.
    #[must_use]
    pub fn is_packed(&self) -> bool {
        matches!(self, PostingList::Packed { .. })
    }

    /// Number of *live* entries — tombstoned documents are already
    /// invisible here, so indexed document frequencies never count the
    /// dead.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            PostingList::Plain { entries, dead } => entries.len() - dead.len(),
            PostingList::Packed { count, dead, .. } => *count as usize - dead.len(),
        }
    }

    /// True when no live entries are stored (tombstoned entries may
    /// still be awaiting cleanup — see [`Self::dead_count`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned entries awaiting the lazy cleanup pass.
    #[must_use]
    pub fn dead_count(&self) -> usize {
        match self {
            PostingList::Plain { dead, .. } | PostingList::Packed { dead, .. } => dead.len(),
        }
    }

    /// The packed block's raw encoded bytes, when packed. Exposed so
    /// tests can assert the append-only contract: between cleanups,
    /// in-order publishes and tombstones never rewrite existing bytes.
    #[must_use]
    pub fn packed_bytes(&self) -> Option<&[u8]> {
        match self {
            PostingList::Plain { .. } => None,
            PostingList::Packed { bytes, .. } => Some(bytes),
        }
    }

    /// Iterate *live* entries in document-id order, decoding on the fly
    /// and skipping tombstoned documents.
    #[must_use]
    pub fn iter(&self) -> PostingIter<'_> {
        let live = self.len();
        match self {
            PostingList::Plain { entries, dead } => PostingIter::Plain {
                entries: entries.iter(),
                dead,
                dead_at: 0,
                live,
            },
            PostingList::Packed {
                bytes, count, dead, ..
            } => PostingIter::Packed {
                bytes,
                at: 0,
                remaining: *count,
                prev_doc: None,
                dead,
                dead_at: 0,
                live,
            },
        }
    }

    /// All *live* entries, decoded into a fresh vector.
    #[must_use]
    pub fn to_entries(&self) -> Vec<IndexEntry> {
        self.iter().collect()
    }

    /// Every stored entry, tombstoned ones included — the physical
    /// contents, used only by the re-encode paths below so a splice
    /// never silently reclaims dead entries the cleanup pass must bill.
    fn all_entries(&self) -> Vec<IndexEntry> {
        match self {
            PostingList::Plain { entries, .. } => entries.clone(),
            PostingList::Packed { bytes, count, .. } => {
                let mut out = Vec::with_capacity(*count as usize);
                let mut at = 0;
                let mut prev = None;
                for _ in 0..*count {
                    let (e, next_at) = decode_entry(bytes, at, prev);
                    at = next_at;
                    prev = Some(e.doc.index() as u32);
                    out.push(e);
                }
                out
            }
        }
    }

    /// Exact wire size of this list as a `QueryFetch` payload: count
    /// prefix plus the per-entry encodings of the *live* entries.
    /// Agrees byte-for-byte with
    /// [`crate::peer::posting_list_wire_size`] on the decoded entries;
    /// with no tombstones pending, the packed block *is* the payload.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            PostingList::Plain { entries, dead } if dead.is_empty() => {
                crate::peer::posting_list_wire_size(entries)
            }
            PostingList::Packed {
                bytes, count, dead, ..
            } if dead.is_empty() => varint_len(u64::from(*count)) + bytes.len(),
            _ => crate::peer::posting_list_wire_size(&self.to_entries()),
        }
    }

    /// Deterministic *logical* bytes this list occupies in memory:
    /// encoded length for packed blocks, [`PLAIN_ENTRY_BYTES`] per entry
    /// for plain vectors, plus 4 bytes per pending tombstone — dead
    /// entries still occupy storage until the cleanup pass reclaims
    /// them. Length-based, never capacity, so the memory-per-peer
    /// metric gates on it exactly.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        match self {
            PostingList::Plain { entries, dead } => {
                entries.len() as u64 * PLAIN_ENTRY_BYTES + dead.len() as u64 * 4
            }
            PostingList::Packed { bytes, dead, .. } => bytes.len() as u64 + dead.len() as u64 * 4,
        }
    }

    /// Insert or replace the entry for its document, keeping the list
    /// sorted by document id with one entry per document. A republished
    /// document sheds any pending tombstone. In-order publishes
    /// (ascending doc ids — the bulk-publish common case) append to the
    /// packed block without re-encoding; out-of-order publishes decode,
    /// splice, and re-encode.
    pub fn publish(&mut self, entry: IndexEntry) {
        let doc = entry.doc.index() as u32;
        match self {
            PostingList::Plain { entries, dead } => {
                if let Ok(i) = dead.binary_search(&doc) {
                    dead.remove(i);
                }
                match entries.binary_search_by_key(&entry.doc, |e| e.doc) {
                    Ok(i) => entries[i] = entry,
                    Err(i) => entries.insert(i, entry),
                }
            }
            PostingList::Packed {
                bytes,
                count,
                last_doc,
                ..
            } => {
                // Tombstoned docs were published before, so they sit at
                // or below `last_doc`: the in-order append path can
                // never hit one.
                if *count == 0 {
                    encode_entry(&entry, None, bytes);
                    *count = 1;
                    *last_doc = doc;
                } else if doc > *last_doc {
                    encode_entry(&entry, Some(*last_doc), bytes);
                    *count += 1;
                    *last_doc = doc;
                } else {
                    let mut list = self.all_entries();
                    match list.binary_search_by_key(&entry.doc, |e| e.doc) {
                        Ok(i) => list[i] = entry,
                        Err(i) => list.insert(i, entry),
                    }
                    let mut dead = match self {
                        PostingList::Packed { dead, .. } => std::mem::take(dead),
                        PostingList::Plain { .. } => unreachable!(),
                    };
                    if let Ok(i) = dead.binary_search(&doc) {
                        dead.remove(i);
                    }
                    *self = PostingList::from_entries(list, true);
                    if let PostingList::Packed { dead: d, .. } = self {
                        *d = dead;
                    }
                }
            }
        }
    }

    /// Eagerly remove the entry for `doc` — physical removal, pending
    /// tombstone included; true if the entry existed. The lazy
    /// alternative is [`Self::tombstone`].
    pub fn remove(&mut self, doc: DocId) -> bool {
        match self {
            PostingList::Plain { entries, dead } => {
                if let Ok(i) = dead.binary_search(&(doc.index() as u32)) {
                    dead.remove(i);
                }
                let before = entries.len();
                entries.retain(|e| e.doc != doc);
                entries.len() != before
            }
            PostingList::Packed {
                count, last_doc, ..
            } => {
                if *count == 0 || doc.index() as u32 > *last_doc {
                    return false;
                }
                let mut list = self.all_entries();
                let before = list.len();
                list.retain(|e| e.doc != doc);
                if list.len() == before {
                    return false;
                }
                let mut dead = match self {
                    PostingList::Packed { dead, .. } => std::mem::take(dead),
                    PostingList::Plain { .. } => unreachable!(),
                };
                if let Ok(i) = dead.binary_search(&(doc.index() as u32)) {
                    dead.remove(i);
                }
                *self = PostingList::from_entries(list, true);
                if let PostingList::Packed { dead: d, .. } = self {
                    *d = dead;
                }
                true
            }
        }
    }

    /// Mark the entry for `doc` dead without touching the stored bytes;
    /// true if a live entry existed. The entry disappears from every
    /// live-facing accessor immediately; the physical reclaim — and its
    /// billing — waits for [`Self::cleanup`].
    pub fn tombstone(&mut self, doc: DocId) -> bool {
        let id = doc.index() as u32;
        let present = match self {
            PostingList::Plain { entries, .. } => {
                entries.binary_search_by_key(&doc, |e| e.doc).is_ok()
            }
            PostingList::Packed { .. } => self.all_entries().iter().any(|e| e.doc == doc),
        };
        if !present {
            return false;
        }
        let dead = match self {
            PostingList::Plain { dead, .. } | PostingList::Packed { dead, .. } => dead,
        };
        match dead.binary_search(&id) {
            Ok(_) => false,
            Err(i) => {
                dead.insert(i, id);
                true
            }
        }
    }

    /// Physically reclaim every tombstoned entry, returning the
    /// reclaimed entries in document order so the caller can bill each
    /// one. A no-op (empty vector) when no tombstones are pending; for
    /// packed blocks this is the only operation allowed to rewrite
    /// bytes behind the append watermark.
    pub fn cleanup(&mut self) -> Vec<IndexEntry> {
        if self.dead_count() == 0 {
            return Vec::new();
        }
        let all = self.all_entries();
        match self {
            PostingList::Plain { entries, dead } => {
                let (live, reclaimed): (Vec<_>, Vec<_>) = all
                    .into_iter()
                    .partition(|e| dead.binary_search(&(e.doc.index() as u32)).is_err());
                *entries = live;
                dead.clear();
                reclaimed
            }
            PostingList::Packed { dead, .. } => {
                let dead_docs = std::mem::take(dead);
                let (live, reclaimed): (Vec<_>, Vec<_>) = all
                    .into_iter()
                    .partition(|e| dead_docs.binary_search(&(e.doc.index() as u32)).is_err());
                *self = PostingList::from_entries(live, true);
                reclaimed
            }
        }
    }
}

impl<'a> IntoIterator for &'a PostingList {
    type Item = IndexEntry;
    type IntoIter = PostingIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Decode-on-read iterator over a [`PostingList`], yielding *live*
/// entries by value in document-id order. Tombstoned documents are
/// skipped by a merge walk against the sorted dead vector, so the
/// iterator stays exact-size.
#[derive(Clone, Debug)]
pub enum PostingIter<'a> {
    /// Plain slice walk.
    Plain {
        /// Underlying entries, dead ones included.
        entries: std::slice::Iter<'a, IndexEntry>,
        /// Sorted tombstoned document ids.
        dead: &'a [u32],
        /// Next tombstone to skip.
        dead_at: usize,
        /// Live entries not yet yielded.
        live: usize,
    },
    /// Sequential decode of a packed block.
    Packed {
        /// The packed block.
        bytes: &'a [u8],
        /// Current decode offset.
        at: usize,
        /// Encoded entries left to decode (dead ones included).
        remaining: u32,
        /// Previous entry's document id (gap base).
        prev_doc: Option<u32>,
        /// Sorted tombstoned document ids.
        dead: &'a [u32],
        /// Next tombstone to skip.
        dead_at: usize,
        /// Live entries not yet yielded.
        live: usize,
    },
}

impl Iterator for PostingIter<'_> {
    type Item = IndexEntry;

    fn next(&mut self) -> Option<IndexEntry> {
        loop {
            let (entry, dead, dead_at, live) = match self {
                PostingIter::Plain {
                    entries,
                    dead,
                    dead_at,
                    live,
                } => (entries.next().copied()?, dead, dead_at, live),
                PostingIter::Packed {
                    bytes,
                    at,
                    remaining,
                    prev_doc,
                    dead,
                    dead_at,
                    live,
                } => {
                    if *remaining == 0 {
                        return None;
                    }
                    let (entry, next_at) = decode_entry(bytes, *at, *prev_doc);
                    *at = next_at;
                    *remaining -= 1;
                    *prev_doc = Some(entry.doc.index() as u32);
                    (entry, dead, dead_at, live)
                }
            };
            if dead
                .get(*dead_at)
                .is_some_and(|&d| d == entry.doc.index() as u32)
            {
                *dead_at += 1;
                continue;
            }
            *live -= 1;
            return Some(entry);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PostingIter::Plain { live, .. } | PostingIter::Packed { live, .. } => {
                (*live, Some(*live))
            }
        }
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::posting_list_wire_size;

    fn entry(doc: u32, tf: u32) -> IndexEntry {
        IndexEntry {
            doc: DocId(doc),
            owner: RingId(0xABCD_EF01_2345 + u128::from(doc)),
            tf,
            doc_len: 100 + doc,
            distinct: 50,
        }
    }

    #[test]
    fn representations_agree_on_everything() {
        for publish_order in [
            vec![0u32, 1, 2, 3, 300, 301],
            vec![300, 0, 301, 2, 1, 3],
            vec![5],
            vec![],
        ] {
            let mut plain = PostingList::new(false);
            let mut packed = PostingList::new(true);
            for &d in &publish_order {
                plain.publish(entry(d, d + 1));
                packed.publish(entry(d, d + 1));
            }
            assert!(packed.is_packed() && !plain.is_packed());
            assert_eq!(plain.len(), packed.len());
            assert_eq!(plain.to_entries(), packed.to_entries());
            assert_eq!(plain.wire_size(), packed.wire_size());
            assert_eq!(
                packed.wire_size(),
                posting_list_wire_size(&packed.to_entries()),
                "packed block + count prefix is exactly the wire encoding"
            );
        }
    }

    #[test]
    fn in_place_replace_and_remove_match() {
        let mut plain = PostingList::new(false);
        let mut packed = PostingList::new(true);
        for list in [&mut plain, &mut packed] {
            list.publish(entry(1, 1));
            list.publish(entry(2, 1));
            list.publish(entry(3, 1));
            list.publish(entry(2, 9)); // replace mid-list
            list.publish(entry(3, 7)); // replace last
            assert!(list.remove(DocId(1)));
            assert!(!list.remove(DocId(1)));
            assert!(!list.remove(DocId(99)));
        }
        assert_eq!(plain.to_entries(), packed.to_entries());
        assert_eq!(packed.len(), 2);
        assert_eq!(packed.to_entries()[0].tf, 9);
        assert_eq!(packed.to_entries()[1].tf, 7);
    }

    #[test]
    fn packed_is_smaller_than_plain() {
        let entries: Vec<IndexEntry> = (0..64).map(|d| entry(1000 + d, 3)).collect();
        let plain = PostingList::from_entries(entries.clone(), false);
        let packed = PostingList::from_entries(entries, true);
        assert!(packed.stored_bytes() < plain.stored_bytes());
        assert_eq!(plain.stored_bytes(), 64 * PLAIN_ENTRY_BYTES);
    }

    #[test]
    fn iterator_is_exact_size() {
        let packed = PostingList::from_entries((0..5).map(|d| entry(d, 1)).collect(), true);
        let mut it = packed.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn tombstones_hide_entries_until_cleanup_reclaims_them() {
        for packed in [false, true] {
            let mut list = PostingList::from_entries((0..6).map(|d| entry(d, 1)).collect(), packed);
            assert!(list.tombstone(DocId(2)));
            assert!(!list.tombstone(DocId(2)), "double tombstone is a no-op");
            assert!(!list.tombstone(DocId(99)), "absent doc cannot be marked");
            assert!(list.tombstone(DocId(5)));
            assert_eq!(list.len(), 4);
            assert_eq!(list.dead_count(), 2);
            let docs: Vec<u32> = list.iter().map(|e| e.doc.index() as u32).collect();
            assert_eq!(docs, vec![0, 1, 3, 4]);
            assert_eq!(list.iter().len(), 4, "exact size excludes the dead");
            assert_eq!(
                list.wire_size(),
                posting_list_wire_size(&list.to_entries()),
                "wire size is live-only"
            );
            let reclaimed = list.cleanup();
            assert_eq!(
                reclaimed.iter().map(|e| e.doc.index()).collect::<Vec<_>>(),
                vec![2, 5]
            );
            assert_eq!(list.dead_count(), 0);
            assert_eq!(list.len(), 4);
            assert!(list.cleanup().is_empty(), "second cleanup finds nothing");
        }
    }

    #[test]
    fn republish_sheds_a_pending_tombstone() {
        for packed in [false, true] {
            let mut list = PostingList::from_entries((0..4).map(|d| entry(d, 1)).collect(), packed);
            assert!(list.tombstone(DocId(1)));
            assert_eq!(list.len(), 3);
            list.publish(entry(1, 42)); // out-of-order republish
            assert_eq!(list.len(), 4);
            assert_eq!(list.dead_count(), 0);
            assert_eq!(list.to_entries()[1].tf, 42);
        }
    }

    #[test]
    fn packed_tombstone_never_rewrites_bytes() {
        let mut list = PostingList::from_entries((0..8).map(|d| entry(d, 1)).collect(), true);
        let before = list.packed_bytes().expect("packed").to_vec();
        assert!(list.tombstone(DocId(3)));
        assert!(list.tombstone(DocId(0)));
        assert_eq!(
            list.packed_bytes().expect("packed"),
            &before[..],
            "tombstones only touch the side vector"
        );
        list.publish(entry(100, 1)); // in-order append extends, never rewrites
        assert_eq!(
            &list.packed_bytes().expect("packed")[..before.len()],
            &before[..]
        );
        list.cleanup();
        assert_ne!(
            list.packed_bytes().expect("packed"),
            &before[..],
            "cleanup is the watermark that re-encodes"
        );
    }

    #[test]
    fn eager_remove_drops_a_tombstoned_entry_exactly_once() {
        for packed in [false, true] {
            let mut list = PostingList::from_entries((0..3).map(|d| entry(d, 1)).collect(), packed);
            assert!(list.tombstone(DocId(1)));
            assert!(list.remove(DocId(1)), "physical entry still existed");
            assert_eq!(list.dead_count(), 0, "its tombstone went with it");
            assert!(list.cleanup().is_empty());
            assert_eq!(list.len(), 2);
        }
    }
}
