//! Posting-list storage: plain entry vectors or delta-gap-compressed
//! blocks, behind one [`PostingList`] type.
//!
//! The huge scale tier (`SPRITE_SCALE=huge`, 100k+ peers) cannot afford
//! `Vec<IndexEntry>` per term: each entry burns 32 logical bytes where
//! the canonical wire encoding of §5.1 needs ~20 — and far less once
//! document ids are delta-encoded. The packed representation therefore
//! stores exactly the per-entry wire encoding of
//! [`crate::peer::posting_list_wire_size`] (gap-varint doc id, raw
//! 16-byte owner address, varint tf / doc-length / distinct-count),
//! reusing the canonical LEB128 codec from `sprite-util`. Readers
//! decode on the fly through [`PostingIter`]; nothing downstream —
//! ranking, replication, hand-over — can tell the representations
//! apart, and the `storage/packed` determinism stage in `sprite-audit`
//! holds both to bit-identical fingerprints.
//!
//! **This module is the only place posting lists may be built.** A
//! `sprite-lint` rule bans `Vec<IndexEntry>` construction elsewhere so
//! every list flows through the sorted-insert invariant enforced here.

use sprite_util::{decode_varint, encode_varint, varint_len, RingId};

use sprite_ir::DocId;

use crate::peer::IndexEntry;

/// Logical bytes one plain in-memory entry occupies: u32 doc id +
/// 16-byte owner address + u32 tf + u32 doc-length + u32 distinct-count.
/// A constant — not `size_of::<IndexEntry>()` — so the memory-per-peer
/// metric is identical across compilers and never gates on layout.
pub const PLAIN_ENTRY_BYTES: u64 = 4 + 16 + 4 + 4 + 4;

/// One inverted list, sorted by document id with one entry per document,
/// stored either as plain entries or as a delta-gap-compressed block.
#[derive(Clone, Debug)]
pub enum PostingList {
    /// Plain decoded entries — the historical layout, and the layout of
    /// corruption-injected lists (which may violate the encoder's
    /// strictly-ascending precondition on purpose).
    Plain(Vec<IndexEntry>),
    /// The per-entry wire encoding, concatenated. `count` entries;
    /// `last_doc` is the final (largest) document id, so in-order
    /// publishes append without touching earlier bytes.
    Packed {
        /// Concatenated per-entry encodings (no count prefix).
        bytes: Vec<u8>,
        /// Number of encoded entries.
        count: u32,
        /// Document id of the last entry (meaningless when `count == 0`).
        last_doc: u32,
    },
}

/// Append the per-entry encoding of `e` to `out`. `prev_doc` is the
/// preceding entry's document id (`None` for the first entry, which
/// stores its id absolutely).
fn encode_entry(e: &IndexEntry, prev_doc: Option<u32>, out: &mut Vec<u8>) {
    let doc = e.doc.index() as u64;
    let gap = match prev_doc {
        Some(p) => doc - u64::from(p),
        None => doc,
    };
    encode_varint(gap, out);
    out.extend_from_slice(&e.owner.0.to_be_bytes());
    encode_varint(u64::from(e.tf), out);
    encode_varint(u64::from(e.doc_len), out);
    encode_varint(u64::from(e.distinct), out);
}

/// Decode one entry starting at `at`; returns the entry and the offset
/// one past it. Packed bytes are self-produced, so failures are bugs.
fn decode_entry(bytes: &[u8], at: usize, prev_doc: Option<u32>) -> (IndexEntry, usize) {
    let (gap, at) = decode_varint(bytes, at).expect("packed postings: doc gap");
    let doc = match prev_doc {
        Some(p) => u64::from(p) + gap,
        None => gap,
    };
    let owner_end = at + 16;
    let owner = u128::from_be_bytes(
        bytes[at..owner_end]
            .try_into()
            .expect("packed postings: owner address"),
    );
    let (tf, at) = decode_varint(bytes, owner_end).expect("packed postings: tf");
    let (doc_len, at) = decode_varint(bytes, at).expect("packed postings: doc_len");
    let (distinct, at) = decode_varint(bytes, at).expect("packed postings: distinct");
    (
        IndexEntry {
            doc: DocId(doc as u32),
            owner: RingId(owner),
            tf: tf as u32,
            doc_len: doc_len as u32,
            distinct: distinct as u32,
        },
        at,
    )
}

impl PostingList {
    /// A fresh empty list in the requested representation.
    #[must_use]
    pub fn new(packed: bool) -> Self {
        if packed {
            PostingList::Packed {
                bytes: Vec::new(),
                count: 0,
                last_doc: 0,
            }
        } else {
            PostingList::Plain(Vec::new())
        }
    }

    /// Build a list from doc-sorted entries in the requested
    /// representation. Callers guarantee sortedness (decoded lists, or
    /// the sorted-insert path); corruption injection passes
    /// `packed = false` so invalid lists are stored verbatim.
    #[must_use]
    pub fn from_entries(entries: Vec<IndexEntry>, packed: bool) -> Self {
        if !packed {
            return PostingList::Plain(entries);
        }
        let mut bytes = Vec::new();
        let mut prev: Option<u32> = None;
        for e in &entries {
            encode_entry(e, prev, &mut bytes);
            prev = Some(e.doc.index() as u32);
        }
        PostingList::Packed {
            bytes,
            count: entries.len() as u32,
            last_doc: prev.unwrap_or(0),
        }
    }

    /// True when stored in the compressed representation.
    #[must_use]
    pub fn is_packed(&self) -> bool {
        matches!(self, PostingList::Packed { .. })
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            PostingList::Plain(v) => v.len(),
            PostingList::Packed { count, .. } => *count as usize,
        }
    }

    /// True when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate entries in document-id order, decoding on the fly.
    #[must_use]
    pub fn iter(&self) -> PostingIter<'_> {
        match self {
            PostingList::Plain(v) => PostingIter::Plain(v.iter()),
            PostingList::Packed { bytes, count, .. } => PostingIter::Packed {
                bytes,
                at: 0,
                remaining: *count,
                prev_doc: None,
            },
        }
    }

    /// All entries, decoded into a fresh vector.
    #[must_use]
    pub fn to_entries(&self) -> Vec<IndexEntry> {
        self.iter().collect()
    }

    /// Exact wire size of this list as a `QueryFetch` payload: the
    /// packed block *is* the wire encoding, so only the count prefix is
    /// added. Agrees byte-for-byte with
    /// [`crate::peer::posting_list_wire_size`] on the decoded entries.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            PostingList::Plain(v) => crate::peer::posting_list_wire_size(v),
            PostingList::Packed { bytes, count, .. } => varint_len(u64::from(*count)) + bytes.len(),
        }
    }

    /// Deterministic *logical* bytes this list occupies in memory:
    /// encoded length for packed blocks, [`PLAIN_ENTRY_BYTES`] per entry
    /// for plain vectors. Length-based, never capacity, so the
    /// memory-per-peer metric gates on it exactly.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        match self {
            PostingList::Plain(v) => v.len() as u64 * PLAIN_ENTRY_BYTES,
            PostingList::Packed { bytes, .. } => bytes.len() as u64,
        }
    }

    /// Insert or replace the entry for its document, keeping the list
    /// sorted by document id with one entry per document. In-order
    /// publishes (ascending doc ids — the bulk-publish common case)
    /// append to the packed block without re-encoding; out-of-order
    /// publishes decode, splice, and re-encode.
    pub fn publish(&mut self, entry: IndexEntry) {
        match self {
            PostingList::Plain(list) => match list.binary_search_by_key(&entry.doc, |e| e.doc) {
                Ok(i) => list[i] = entry,
                Err(i) => list.insert(i, entry),
            },
            PostingList::Packed {
                bytes,
                count,
                last_doc,
            } => {
                let doc = entry.doc.index() as u32;
                if *count == 0 {
                    encode_entry(&entry, None, bytes);
                    *count = 1;
                    *last_doc = doc;
                } else if doc > *last_doc {
                    encode_entry(&entry, Some(*last_doc), bytes);
                    *count += 1;
                    *last_doc = doc;
                } else {
                    let mut list = self.to_entries();
                    match list.binary_search_by_key(&entry.doc, |e| e.doc) {
                        Ok(i) => list[i] = entry,
                        Err(i) => list.insert(i, entry),
                    }
                    *self = PostingList::from_entries(list, true);
                }
            }
        }
    }

    /// Remove the entry for `doc`; true if it existed.
    pub fn remove(&mut self, doc: DocId) -> bool {
        match self {
            PostingList::Plain(list) => {
                let before = list.len();
                list.retain(|e| e.doc != doc);
                list.len() != before
            }
            PostingList::Packed {
                count, last_doc, ..
            } => {
                if *count == 0 || doc.index() as u32 > *last_doc {
                    return false;
                }
                let mut list = self.to_entries();
                let before = list.len();
                list.retain(|e| e.doc != doc);
                if list.len() == before {
                    return false;
                }
                *self = PostingList::from_entries(list, true);
                true
            }
        }
    }
}

impl<'a> IntoIterator for &'a PostingList {
    type Item = IndexEntry;
    type IntoIter = PostingIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Decode-on-read iterator over a [`PostingList`], yielding entries by
/// value in document-id order.
#[derive(Clone, Debug)]
pub enum PostingIter<'a> {
    /// Plain slice walk.
    Plain(std::slice::Iter<'a, IndexEntry>),
    /// Sequential decode of a packed block.
    Packed {
        /// The packed block.
        bytes: &'a [u8],
        /// Current decode offset.
        at: usize,
        /// Entries left to decode.
        remaining: u32,
        /// Previous entry's document id (gap base).
        prev_doc: Option<u32>,
    },
}

impl Iterator for PostingIter<'_> {
    type Item = IndexEntry;

    fn next(&mut self) -> Option<IndexEntry> {
        match self {
            PostingIter::Plain(it) => it.next().copied(),
            PostingIter::Packed {
                bytes,
                at,
                remaining,
                prev_doc,
            } => {
                if *remaining == 0 {
                    return None;
                }
                let (entry, next_at) = decode_entry(bytes, *at, *prev_doc);
                *at = next_at;
                *remaining -= 1;
                *prev_doc = Some(entry.doc.index() as u32);
                Some(entry)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PostingIter::Plain(it) => it.size_hint(),
            PostingIter::Packed { remaining, .. } => {
                (*remaining as usize, Some(*remaining as usize))
            }
        }
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::posting_list_wire_size;

    fn entry(doc: u32, tf: u32) -> IndexEntry {
        IndexEntry {
            doc: DocId(doc),
            owner: RingId(0xABCD_EF01_2345 + u128::from(doc)),
            tf,
            doc_len: 100 + doc,
            distinct: 50,
        }
    }

    #[test]
    fn representations_agree_on_everything() {
        for publish_order in [
            vec![0u32, 1, 2, 3, 300, 301],
            vec![300, 0, 301, 2, 1, 3],
            vec![5],
            vec![],
        ] {
            let mut plain = PostingList::new(false);
            let mut packed = PostingList::new(true);
            for &d in &publish_order {
                plain.publish(entry(d, d + 1));
                packed.publish(entry(d, d + 1));
            }
            assert!(packed.is_packed() && !plain.is_packed());
            assert_eq!(plain.len(), packed.len());
            assert_eq!(plain.to_entries(), packed.to_entries());
            assert_eq!(plain.wire_size(), packed.wire_size());
            assert_eq!(
                packed.wire_size(),
                posting_list_wire_size(&packed.to_entries()),
                "packed block + count prefix is exactly the wire encoding"
            );
        }
    }

    #[test]
    fn in_place_replace_and_remove_match() {
        let mut plain = PostingList::new(false);
        let mut packed = PostingList::new(true);
        for list in [&mut plain, &mut packed] {
            list.publish(entry(1, 1));
            list.publish(entry(2, 1));
            list.publish(entry(3, 1));
            list.publish(entry(2, 9)); // replace mid-list
            list.publish(entry(3, 7)); // replace last
            assert!(list.remove(DocId(1)));
            assert!(!list.remove(DocId(1)));
            assert!(!list.remove(DocId(99)));
        }
        assert_eq!(plain.to_entries(), packed.to_entries());
        assert_eq!(packed.len(), 2);
        assert_eq!(packed.to_entries()[0].tf, 9);
        assert_eq!(packed.to_entries()[1].tf, 7);
    }

    #[test]
    fn packed_is_smaller_than_plain() {
        let entries: Vec<IndexEntry> = (0..64).map(|d| entry(1000 + d, 3)).collect();
        let plain = PostingList::from_entries(entries.clone(), false);
        let packed = PostingList::from_entries(entries, true);
        assert!(packed.stored_bytes() < plain.stored_bytes());
        assert_eq!(plain.stored_bytes(), 64 * PLAIN_ENTRY_BYTES);
    }

    #[test]
    fn iterator_is_exact_size() {
        let packed = PostingList::from_entries((0..5).map(|d| entry(d, 1)).collect(), true);
        let mut it = packed.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }
}
