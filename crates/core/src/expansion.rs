//! §7 query expansion by local context analysis.
//!
//! "Since cooperation among peers is not as close as in a distributed
//! system … local context analysis can be employed in SPRITE. In local
//! context analysis, global information is not required — the co-occurrence
//! of \[terms\] in a document is analyzed. Queries are enriched accordingly."
//!
//! The querying peer runs the original query, downloads the term vectors of
//! the top-ranked documents from their owner peers (each fetch is charged),
//! scores candidate terms by how many of those documents they co-occur in,
//! and re-issues the query with the best candidates appended.

use std::collections::HashMap;

use sprite_ir::{Hit, Query, TermId};

use crate::system::SpriteSystem;

/// Expansion parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionConfig {
    /// Top-ranked documents to analyze for co-occurring terms.
    pub candidate_docs: usize,
    /// Terms appended to the query.
    pub expand_terms: usize,
    /// Candidates occurring in more than this fraction of the analyzed
    /// documents are considered too general and skipped.
    pub max_doc_fraction: f64,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            candidate_docs: 10,
            expand_terms: 3,
            max_doc_fraction: 0.9,
        }
    }
}

impl SpriteSystem {
    /// Run `query` with local-context-analysis expansion and return the top
    /// `k` results of the enriched query. Falls back to the plain result
    /// when no expansion terms can be found.
    pub fn issue_query_expanded(
        &mut self,
        query: &Query,
        k: usize,
        cfg: &ExpansionConfig,
    ) -> Vec<Hit> {
        let initial = self.issue_query(query, cfg.candidate_docs.max(k));
        if initial.is_empty() {
            return initial;
        }
        let analyzed: Vec<Hit> = initial.iter().copied().take(cfg.candidate_docs).collect();

        // Download each top document's term vector from its owner peer
        // (alive owners only — a dead owner's document cannot be fetched).
        let mut doc_count: HashMap<TermId, u32> = HashMap::new();
        let mut tf_total: HashMap<TermId, u64> = HashMap::new();
        let mut fetched = 0usize;
        for h in &analyzed {
            let owner = self.owner_peer(h.doc);
            if !self.net().contains(owner) {
                continue;
            }
            self.charge_doc_fetch_traced(owner);
            fetched += 1;
            for &(t, c) in self.corpus().doc(h.doc).terms() {
                *doc_count.entry(t).or_insert(0) += 1;
                *tf_total.entry(t).or_insert(0) += u64::from(c);
            }
        }
        if fetched == 0 {
            let mut out = initial;
            out.truncate(k);
            return out;
        }

        // Score candidates: prefer terms shared by many of the analyzed
        // documents, then by total frequency; drop query terms and terms so
        // common they carry no meaning.
        let cap = ((fetched as f64) * cfg.max_doc_fraction).ceil() as u32;
        let extra: Vec<TermId> = sprite_util::top_k(
            cfg.expand_terms,
            doc_count.iter().filter_map(|(&t, &dc)| {
                if query.contains(t) || dc > cap {
                    None
                } else {
                    Some(((dc, tf_total[&t]), t))
                }
            }),
        )
        .into_iter()
        .map(|s| s.item)
        .collect();

        if extra.is_empty() {
            let mut out = initial;
            out.truncate(k);
            return out;
        }
        let mut terms = query.terms().to_vec();
        terms.extend(extra);
        self.issue_query(&Query::new(terms), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpriteConfig;
    use sprite_chord::MsgKind;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};
    use sprite_ir::DocId;

    fn system() -> (SyntheticCorpus, SpriteSystem) {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(21));
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 16, SpriteConfig::default(), 21);
        sys.publish_all();
        (sc, sys)
    }

    #[test]
    fn expansion_returns_results() {
        let (_sc, mut sys) = system();
        let t = sys.published_terms(DocId(0))[0];
        let q = Query::new(vec![t]);
        let hits = sys.issue_query_expanded(&q, 10, &ExpansionConfig::default());
        assert!(!hits.is_empty());
        assert!(hits.len() <= 10);
    }

    #[test]
    fn expansion_charges_document_fetches() {
        let (_sc, mut sys) = system();
        let t = sys.published_terms(DocId(0))[0];
        let q = Query::new(vec![t]);
        sys.net_mut().reset_stats();
        let plain_fetches = {
            sys.issue_query(&q, 10);
            sys.net().stats().count(MsgKind::QueryFetch)
        };
        sys.net_mut().reset_stats();
        sys.issue_query_expanded(&q, 10, &ExpansionConfig::default());
        let expanded_fetches = sys.net().stats().count(MsgKind::QueryFetch);
        assert!(
            expanded_fetches > plain_fetches,
            "expansion must pay for document downloads ({expanded_fetches} vs {plain_fetches})"
        );
    }

    #[test]
    fn expansion_can_recall_more_topical_documents() {
        // Expanding a single topical term should pull in sibling core terms
        // and therefore rank more same-topic documents.
        let (sc, mut sys) = system();
        // Use a topic-core term that is published for at least one doc.
        let topic = 0usize;
        let core = sc.topic_core(topic);
        let published_core = core
            .iter()
            .copied()
            .find(|&t| sys.indexed_df(t) > 0)
            .expect("some core term is indexed");
        let q = Query::new(vec![published_core]);
        let k = 30;
        let plain = sys.issue_query(&q, k);
        let expanded = sys.issue_query_expanded(&q, k, &ExpansionConfig::default());
        let topical = |hits: &[Hit]| {
            hits.iter()
                .filter(|h| sc.doc_topics(h.doc).contains(&(topic as u16)))
                .count()
        };
        assert!(
            topical(&expanded) + 2 >= topical(&plain),
            "expansion should not collapse topical recall"
        );
    }

    #[test]
    fn empty_query_expansion_is_empty() {
        let (_sc, mut sys) = system();
        let hits = sys.issue_query_expanded(&Query::default(), 5, &ExpansionConfig::default());
        assert!(hits.is_empty());
    }
}
