//! §7 robustness extensions: peer failure, successor replication of
//! indexes, and the hot-term advisory for load balancing.
//!
//! The paper's argument: with periodic index replication to successors,
//! "peer failure will have little impact in SPRITE … only a small number of
//! terms are replicated." The churn experiment (bench `churn`) measures
//! exactly that: retrieval quality after abrupt indexing-peer failures,
//! with and without replication.

use sprite_chord::MsgKind;
use sprite_ir::{DocId, TermId};
use sprite_util::{derive_rng, RingId};

use crate::peer::IndexingState;
use crate::system::SpriteSystem;

/// Report of a [`SpriteSystem::hot_term_advisory`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdvisoryReport {
    /// Hot terms detected across all indexing peers.
    pub hot_terms: usize,
    /// (doc, term) pairs retracted from the index.
    pub retractions: usize,
    /// Replacement terms published.
    pub replacements: usize,
}

impl SpriteSystem {
    /// Abruptly fail `peer`: it vanishes from the ring and all its indexing
    /// state (inverted lists *and* cached queries) is lost. The ring is
    /// repaired afterwards; lost index entries come back only through
    /// [`Self::replicate_indexes`]-style replication or future re-publishes.
    pub fn fail_peer(&mut self, peer: RingId) -> bool {
        if self.net_mut().fail(peer).is_err() {
            return false;
        }
        self.indexing_mut().remove(&peer.0);
        self.net_mut().converge(64);
        self.refresh_peers();
        true
    }

    /// Fail `n` random indexing peers (deterministic in `seed`). Returns
    /// the failed peer ids.
    pub fn fail_random_peers(&mut self, n: usize, seed: u64) -> Vec<RingId> {
        use sprite_util::SliceRng;
        let mut rng = derive_rng(seed, "peer-failures");
        let mut candidates = self.peers().to_vec();
        candidates.shuffle(&mut rng);
        let victims: Vec<RingId> = candidates
            .into_iter()
            .take(n.min(self.peers().len().saturating_sub(1)))
            .collect();
        for &v in &victims {
            if self.net_mut().fail(v).is_ok() {
                self.indexing_mut().remove(&v.0);
            }
        }
        self.net_mut().converge(64);
        self.refresh_peers();
        victims
    }

    /// The periodic successor replication of §7: every responsible indexing
    /// peer copies each of its inverted lists to the `replication − 1`
    /// peers succeeding the *term's* ring position. A no-op when
    /// [`crate::SpriteConfig::replication`] is 1. Returns entries copied.
    pub fn replicate_indexes(&mut self) -> usize {
        let degree = self.config().replication;
        if degree <= 1 {
            return 0;
        }
        // Snapshot which peers hold which terms (borrow hygiene).
        let holders: Vec<(u128, Vec<TermId>)> = self
            .indexing_mut()
            .iter()
            .map(|(&p, st)| (p, st.term_dfs().map(|(t, _)| t).collect()))
            .collect();
        let mut copied = 0;
        for (holder, terms) in holders {
            if !self.net().contains(RingId(holder)) {
                continue;
            }
            for term in terms {
                let key = self.term_ring(term);
                // Only the current responsible peer fans out; replicas do
                // not re-replicate.
                let Some(owner) = self.net().oracle_owner(key) else {
                    continue;
                };
                if owner.0 != holder {
                    continue;
                }
                let entries: Vec<_> = self
                    .indexing_state(owner)
                    .map(|st| st.list(term).to_vec())
                    .unwrap_or_default();
                if entries.is_empty() {
                    continue;
                }
                let cap = self.config().query_cache_capacity;
                let replicas: Vec<RingId> = self
                    .net()
                    .oracle_replicas(key, degree)
                    .into_iter()
                    .skip(1)
                    .collect();
                for replica in replicas {
                    self.net_mut().charge(MsgKind::Replication);
                    let st = self
                        .indexing_mut()
                        .entry(replica.0)
                        .or_insert_with(|| IndexingState::new(cap));
                    for &e in &entries {
                        st.publish(term, e);
                        copied += 1;
                    }
                }
            }
        }
        copied
    }

    /// §7 load balancing: indexing peers report terms whose indexed
    /// document frequency exceeds `df_threshold`; every owner indexing such
    /// a term retracts it (one advisory message each) and publishes its
    /// next-best term instead. High-df terms "contribute little in the
    /// similarity calculation" anyway (tiny IDF).
    pub fn hot_term_advisory(&mut self, df_threshold: usize) -> AdvisoryReport {
        let mut report = AdvisoryReport::default();
        // Collect (term, affected docs) across all peers. Peers and terms
        // are visited in sorted order: advisory application mutates owner
        // state (exclusions, replacements), so iteration order would
        // otherwise leak HashMap randomness into published indexes.
        let mut hot: Vec<(TermId, Vec<DocId>)> = {
            let index = self.indexing_mut();
            let mut peers: Vec<&u128> = index.keys().collect();
            peers.sort_unstable();
            peers
                .into_iter()
                .map(|p| &index[p])
                .flat_map(|st| {
                    st.term_dfs()
                        .filter(|&(_, df)| df > df_threshold)
                        .map(|(t, _)| (t, st.list(t).iter().map(|e| e.doc).collect::<Vec<_>>()))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        hot.sort_unstable_by_key(|&(t, _)| t);
        report.hot_terms = hot.len();
        for (term, docs) in hot {
            for doc in docs {
                // One advisory message from the indexing peer to the owner.
                self.net_mut().charge(MsgKind::Maintenance);
                if self.apply_advisory(doc, term) {
                    report.replacements += 1;
                }
                report.retractions += 1;
            }
        }
        report
    }

    /// Apply one advisory: the owner of `doc` drops `term`, excludes it
    /// from future learning, and republishes its next-best candidate.
    /// Returns true if a replacement was published.
    fn apply_advisory(&mut self, doc: DocId, term: TermId) -> bool {
        if !self.owner_state(doc).published.contains(&term) {
            // Stale advisory (e.g. the owner already replaced the term).
            self.owner_mut(doc).excluded.insert(term);
            return false;
        }
        self.remove_term(doc, term);
        {
            let owner = self.owner_mut(doc);
            owner.published.retain(|&t| t != term);
            owner.excluded.insert(term);
        }
        // Next-best candidate under the exclusion.
        let budget = self.owner_state(doc).published.len() + 1;
        let candidates = {
            let d = self.corpus().doc(doc).clone();
            let owner = self.owner_state(doc);
            crate::learn::select_terms_excluding(&d, &owner.stats, budget, &owner.excluded)
        };
        let published = self.owner_state(doc).published.clone();
        for t in candidates {
            if !published.contains(&t) {
                self.publish_term(doc, t);
                self.owner_mut(doc).published.push(t);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpriteConfig;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};
    use sprite_ir::Query;

    fn system(replication: usize) -> SpriteSystem {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(13));
        let cfg = SpriteConfig {
            replication,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, 13);
        sys.publish_all();
        sys
    }

    #[test]
    fn failure_without_replication_loses_entries() {
        let mut sys = system(1);
        let before = sys.total_index_entries();
        let victims = sys.fail_random_peers(4, 1);
        assert_eq!(victims.len(), 4);
        assert!(
            sys.total_index_entries() < before,
            "some index entries must be lost"
        );
        // Queries still run (terms on dead peers are simply discarded, §7).
        let t = sys.published_terms(DocId(0)).first().copied();
        if let Some(t) = t {
            let _ = sys.issue_query(&Query::new(vec![t]), 10);
        }
    }

    #[test]
    fn replication_preserves_retrieval_after_failure() {
        let mut sys = system(3);
        sys.replicate_indexes();
        // Pick a (doc, term) pair and kill its responsible indexing peer.
        let doc = DocId(0);
        let term = sys.published_terms(doc)[0];
        let key = sys.term_ring(term);
        let victim = sys.net().oracle_owner(key).unwrap();
        assert!(sys.fail_peer(victim));
        // The replicas answer: doc 0 is still retrievable by that term.
        let all = sys.corpus().len();
        let hits = sys.issue_query(&Query::new(vec![term]), all);
        assert!(
            hits.iter().any(|h| h.doc == doc),
            "replication must keep doc retrievable"
        );
    }

    #[test]
    fn replicate_is_noop_at_degree_one() {
        let mut sys = system(1);
        assert_eq!(sys.replicate_indexes(), 0);
    }

    #[test]
    fn replicate_copies_every_entry_once_per_replica() {
        let mut sys = system(2);
        let copied = sys.replicate_indexes();
        // Degree 2 ⇒ one extra copy per (doc, term) entry.
        assert_eq!(copied, sys.corpus().len() * 5);
        // Re-running re-publishes the same copies (idempotent state).
        let entries_before = sys.total_index_entries();
        sys.replicate_indexes();
        assert_eq!(sys.total_index_entries(), entries_before);
    }

    #[test]
    fn fail_unknown_peer_is_false() {
        let mut sys = system(1);
        assert!(!sys.fail_peer(RingId(12345)));
    }

    #[test]
    fn hot_term_advisory_retracts_and_replaces() {
        let mut sys = system(1);
        // Find the hottest indexed df so the advisory flags only the top.
        let max_df = {
            let mut m = 0;
            for p in sys.peers().to_vec() {
                if let Some(st) = sys.indexing_state(p) {
                    for (_, df) in st.term_dfs() {
                        m = m.max(df);
                    }
                }
            }
            m
        };
        assert!(max_df >= 2, "tiny corpus should share some frequent terms");
        let report = sys.hot_term_advisory(max_df - 1);
        assert!(report.hot_terms >= 1);
        assert!(report.retractions >= report.hot_terms);
        assert!(report.replacements <= report.retractions);
        for i in 0..sys.corpus().len() {
            let doc = DocId(i as u32);
            let owner = sys.owner_state(doc);
            for t in &owner.excluded {
                assert!(
                    !owner.published.contains(t),
                    "excluded term still published"
                );
            }
        }
    }

    #[test]
    fn excluded_terms_stay_out_after_learning() {
        let mut sys = system(1);
        sys.hot_term_advisory(10);
        sys.learn(2);
        for i in 0..sys.corpus().len() {
            let doc = DocId(i as u32);
            let owner = sys.owner_state(doc);
            for t in &owner.excluded {
                assert!(
                    !owner.published.contains(t),
                    "excluded term republished for doc {i}"
                );
            }
        }
    }
}
