//! §7 robustness extensions: peer failure, successor replication of
//! indexes, and the hot-term advisory for load balancing.
//!
//! The paper's argument: with periodic index replication to successors,
//! "peer failure will have little impact in SPRITE … only a small number of
//! terms are replicated." The churn experiment (bench `churn`) measures
//! exactly that: retrieval quality after abrupt indexing-peer failures,
//! with and without replication.

use std::collections::BTreeMap;

use sprite_chord::{sim, ChurnEngine, ChurnEvent, MsgKind, NetStats, Phase, TickReport};
use sprite_ir::{DocId, TermId};
use sprite_util::{derive_rng, EventQueue, RingId};

use crate::peer::{term_record_wire_size, IndexEntry, IndexingState};
use crate::system::SpriteSystem;

/// Destination-batched maintenance transfers awaiting a flush: per
/// destination, the summed payload bytes and the records to install on
/// delivery.
type TransferBatch = BTreeMap<u128, (u64, Vec<(TermId, Vec<IndexEntry>)>)>;

/// Report of a [`SpriteSystem::hot_term_advisory`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdvisoryReport {
    /// Hot terms detected across all indexing peers.
    pub hot_terms: usize,
    /// (doc, term) pairs retracted from the index.
    pub retractions: usize,
    /// Replacement terms published.
    pub replacements: usize,
}

/// Report of one [`SpriteSystem::churn_tick`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// The ring-level outcome (events applied, bounded-maintenance changes).
    pub tick: TickReport,
    /// Inverted-list entries handed over by gracefully leaving peers.
    pub handed_over: usize,
    /// Indexing states dropped with abruptly failing peers.
    pub states_lost: usize,
}

/// Report of one [`SpriteSystem::maintenance_round`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Tombstoned entries physically reclaimed by the cleanup pass.
    pub tombstones_reclaimed: usize,
    /// Entries re-homed from peers that are no longer responsible.
    pub orphans_moved: usize,
    /// Entries copied by the replication pass.
    pub replicated: usize,
}

impl SpriteSystem {
    /// Abruptly fail `peer`: it vanishes from the ring and all its indexing
    /// state (inverted lists *and* cached queries) is lost. The ring is
    /// repaired afterwards; lost index entries come back only through
    /// [`Self::replicate_indexes`]-style replication or future re-publishes.
    pub fn fail_peer(&mut self, peer: RingId) -> bool {
        if self.net_mut().fail(peer).is_err() {
            return false;
        }
        self.indexing_mut().remove(&peer.0);
        self.net_mut().converge(64);
        self.refresh_peers();
        true
    }

    /// Fail `n` random indexing peers (deterministic in `seed`). Returns
    /// only the peers the network actually removed: the cached peer list
    /// can be stale after direct ring churn, and a peer that was already
    /// dead must not be reported as a fresh casualty to callers doing
    /// failure accounting.
    pub fn fail_random_peers(&mut self, n: usize, seed: u64) -> Vec<RingId> {
        use sprite_util::SliceRng;
        let mut rng = derive_rng(seed, "peer-failures");
        let mut candidates = self.peers().to_vec();
        candidates.shuffle(&mut rng);
        let limit = n.min(self.peers().len().saturating_sub(1));
        let mut victims: Vec<RingId> = Vec::with_capacity(limit);
        for v in candidates {
            if victims.len() >= limit || self.net().len() <= 1 {
                break;
            }
            if self.net_mut().fail(v).is_ok() {
                self.indexing_mut().remove(&v.0);
                victims.push(v);
            }
        }
        self.net_mut().converge(64);
        self.refresh_peers();
        victims
    }

    /// One tick of continuous churn (§7 under realistic maintenance): plan
    /// the tick's events, let gracefully leaving peers hand their inverted
    /// lists to a live successor *before* departing (their routing state is
    /// still intact), drop the state of abrupt failures, then apply the
    /// membership changes with the engine's bounded stabilization budget.
    /// No `converge`, no oracle — staleness the budget leaves behind is
    /// what the churn experiments measure.
    pub fn churn_tick(&mut self, engine: &mut ChurnEngine) -> ChurnReport {
        let span = self.trace_span_start();
        let mut report = ChurnReport::default();
        let events = engine.plan(self.net());
        for ev in &events {
            match *ev {
                ChurnEvent::Leave { id } => {
                    report.handed_over += self.hand_over_indexing(id);
                }
                ChurnEvent::Fail { id } => {
                    if self.indexing_mut().remove(&id.0).is_some() {
                        report.states_lost += 1;
                    }
                }
                ChurnEvent::Join { .. } => {}
            }
        }
        report.tick = engine.apply(self.net_mut(), &events);
        self.refresh_peers();
        self.trace_span_end(Phase::ChurnRepair, span);
        report
    }

    /// A gracefully leaving peer ships its inverted lists to its first
    /// alive successor before departing (§7's handover). Returns entries
    /// copied; 0 when the peer held no state or has no live successor (the
    /// state is then lost with the departure).
    fn hand_over_indexing(&mut self, leaving: RingId) -> usize {
        if self.indexing_state(leaving).is_none() {
            return 0;
        }
        let mut delta = NetStats::new();
        let chain = self.net().replicas_from_owner(leaving, 2, &mut delta);
        self.net_mut().absorb_stats(&delta);
        let Some(&heir) = chain.get(1) else {
            self.indexing_mut().remove(&leaving.0);
            return 0;
        };
        let state = self
            .indexing_mut()
            .remove(&leaving.0)
            .expect("checked above");
        // The leaver ships its full holdings over the wire, whether or not
        // the heir already mirrors some of them — bill the shipped payload.
        let shipped_bytes: u64 = state
            .term_dfs()
            .map(|(t, _)| {
                state
                    .entries(t)
                    .iter()
                    .map(|e| term_record_wire_size(t, e) as u64)
                    .sum::<u64>()
            })
            .sum();
        let cap = self.config().query_cache_capacity;
        let packed = self.config().packed_postings;
        let copied = self
            .indexing_mut()
            .entry(heir.0)
            .or_insert_with(|| IndexingState::with_packing(cap, packed))
            .absorb_replica(&state);
        self.net_mut().charge_n(MsgKind::Replication, copied as u64);
        self.net_mut()
            .charge_bytes(MsgKind::Replication, shipped_bytes);
        copied
    }

    /// The periodic maintenance hook run between churn ticks: reclaim
    /// tombstoned entries, re-home entries orphaned by ownership
    /// transfer, then refresh successor replicas. Intended cadence:
    /// every few [`Self::churn_tick`]s.
    pub fn maintenance_round(&mut self) -> MaintenanceReport {
        let span = self.trace_span_start();
        let report = MaintenanceReport {
            tombstones_reclaimed: self.reclaim_tombstones(),
            orphans_moved: self.republish_orphans(),
            replicated: self.replicate_indexes(),
        };
        self.trace_span_end(Phase::Maintenance, span);
        report
    }

    /// Lazy tombstone reclamation: every indexing peer compacts its
    /// inverted lists, physically dropping entries that earlier removal
    /// records marked dead (see `lazy_tombstones` in
    /// [`crate::SpriteConfig`]). The per-entry wire accounting — one
    /// [`MsgKind::IndexRemove`] plus the removal record's exact bytes at
    /// the owner and every replica — happened when the record landed;
    /// reclamation itself is local compaction and charges nothing. The
    /// compacted live lists then flow to successor replicas through this
    /// same round's replication pass (per-entry
    /// [`MsgKind::Replication`], delivery-gated through
    /// [`Self::flush_transfer_batch`]), so a reclaimed entry can never
    /// resurrect via replica repair. Runs first in the round, so no
    /// tombstone survives a single `maintenance_round` at a live peer.
    /// Returns entries reclaimed across all peers.
    fn reclaim_tombstones(&mut self) -> usize {
        // Peers are visited in sorted order: cleanup may drop emptied
        // lists, so iteration order would otherwise leak HashMap
        // randomness into subsequent maintenance passes.
        let mut dirty: Vec<u128> = self
            .indexing_mut()
            .iter()
            .filter(|(_, st)| st.pending_tombstones() > 0)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        let mut reclaimed = 0;
        for p in dirty {
            if let Some(st) = self.indexing_mut().get_mut(&p) {
                reclaimed += st.cleanup_tombstones().len();
            }
        }
        reclaimed
    }

    /// Re-home entries orphaned by ownership transfer: after joins, a peer
    /// may hold a term whose arc now belongs to a newcomer. Each holder
    /// verifies responsibility with a routed lookup; when the owner
    /// differs, one digest probe compares holdings and the term's entries
    /// are shipped over (the old holder keeps its copy, which now acts as
    /// a replica). Returns entries newly added at their proper owners.
    fn republish_orphans(&mut self) -> usize {
        let batched = self.config().batched_publish;
        // dest peer → (summed payload bytes, records), flushed as one
        // transfer message per destination (BTreeMap: deterministic order).
        let mut batch: TransferBatch = BTreeMap::new();
        let holders = self.holder_snapshot();
        let mut moved = 0;
        for (holder, terms) in holders {
            if !self.net().contains(RingId(holder)) {
                continue;
            }
            for term in terms {
                let key = self.term_ring(term);
                let Ok(lookup) = self.net_mut().lookup_fast(RingId(holder), key) else {
                    continue;
                };
                if lookup.owner.0 == holder {
                    continue;
                }
                self.net_mut().charge(MsgKind::Maintenance);
                let entries: Vec<_> = self
                    .indexing_state(RingId(holder))
                    .map(|st| st.entries(term))
                    .unwrap_or_default();
                if entries.is_empty() {
                    continue;
                }
                let bytes: u64 = entries
                    .iter()
                    .map(|e| term_record_wire_size(term, e) as u64)
                    .sum();
                if batched {
                    let slot = batch
                        .entry(lookup.owner.0)
                        .or_insert_with(|| (0, Vec::new()));
                    slot.0 += bytes;
                    slot.1.push((term, entries));
                    continue; // installed (or lost) at flush time
                }
                // Unbatched: one delivery-gated transfer per (holder, term).
                let salt =
                    sim::message_salt(holder as u64, lookup.owner.0 as u64, term.index() as u64);
                match self.net().plan_delivery(RingId(holder), lookup.owner, salt) {
                    Ok((_arrival, drops)) => {
                        if drops > 0 {
                            self.net_mut().charge_n(MsgKind::Timeout, drops);
                        }
                        self.net_mut()
                            .charge_n(MsgKind::Replication, entries.len() as u64);
                        self.net_mut().charge_bytes(MsgKind::Replication, bytes);
                    }
                    Err(drops) => {
                        self.net_mut().charge_n(MsgKind::Timeout, drops);
                        continue; // transfer lost; the holder keeps its copy
                    }
                }
                let cap = self.config().query_cache_capacity;
                let packed = self.config().packed_postings;
                let st = self
                    .indexing_mut()
                    .entry(lookup.owner.0)
                    .or_insert_with(|| IndexingState::with_packing(cap, packed));
                let before = st.indexed_df(term);
                for &e in &entries {
                    st.publish(term, e);
                }
                moved += st.indexed_df(term) - before;
            }
        }
        // Batched: all of one destination's re-homed records travel as a
        // single in-flight transfer through the event scheduler.
        moved += self.flush_transfer_batch(batch, true);
        moved
    }

    /// Flush dest-batched maintenance transfers through the event
    /// scheduler: each destination's records travel as one in-flight
    /// message planned through the delivery layer — drops bill real
    /// [`MsgKind::Timeout`]s and a drowned message installs nothing, while
    /// the perfect default delivers every slot at `t = 0` in key order,
    /// reproducing the lockstep flush. Returns installed entries: only
    /// newly-added ones when `count_new` (the orphan pass), else every
    /// delivered record (the replication pass bills data moved).
    fn flush_transfer_batch(&mut self, batch: TransferBatch, count_new: bool) -> usize {
        let cap = self.config().query_cache_capacity;
        let packed = self.config().packed_postings;
        let mut queue = EventQueue::new();
        for (dest, (bytes, records)) in batch {
            // A dest-batched transfer merges many holders into one message,
            // so the sender is collapsed onto the destination for link
            // sampling.
            let salt = sim::message_salt(dest as u64, (dest >> 64) as u64, 0x6d61_696e);
            let (arrival, drops, delivered) =
                match self.net().plan_delivery(RingId(dest), RingId(dest), salt) {
                    Ok((arrival, drops)) => (arrival, drops, true),
                    Err(drops) => (0, drops, false),
                };
            queue.push(arrival, (dest, bytes, records, drops, delivered));
        }
        let mut installed = 0;
        while let Some((_, (dest, bytes, records, drops, delivered))) = queue.pop() {
            if drops > 0 {
                self.net_mut().charge_n(MsgKind::Timeout, drops);
            }
            if !delivered {
                continue; // the transfer drowned; nothing arrives
            }
            self.net_mut().charge(MsgKind::Replication);
            self.net_mut().charge_bytes(MsgKind::Replication, bytes);
            let st = self
                .indexing_mut()
                .entry(dest)
                .or_insert_with(|| IndexingState::with_packing(cap, packed));
            for (term, entries) in records {
                let before = st.indexed_df(term);
                for &e in &entries {
                    st.publish(term, e);
                }
                installed += if count_new {
                    st.indexed_df(term) - before
                } else {
                    entries.len()
                };
            }
        }
        installed
    }

    /// Snapshot which peers hold which terms, both levels sorted so every
    /// maintenance pass walks the index in a reproducible order.
    fn holder_snapshot(&mut self) -> Vec<(u128, Vec<TermId>)> {
        let mut holders: Vec<(u128, Vec<TermId>)> = self
            .indexing_mut()
            .iter()
            .map(|(&p, st)| {
                let mut terms: Vec<TermId> = st.term_dfs().map(|(t, _)| t).collect();
                terms.sort_unstable();
                (p, terms)
            })
            .collect();
        holders.sort_unstable_by_key(|&(p, _)| p);
        holders
    }

    /// The periodic successor replication of §7: every responsible indexing
    /// peer copies each of its inverted lists to the `replication − 1`
    /// peers succeeding the *term's* ring position. A no-op when
    /// [`crate::SpriteConfig::replication`] is 1. Returns entries copied.
    ///
    /// Responsibility and the replica set are both resolved by routed
    /// walks (a `lookup_fast` from the holder, then the owner's successor
    /// chain), and replication is charged per entry shipped, not per peer
    /// contacted — the bill scales with the data moved, matching the
    /// paper's per-message cost model.
    pub fn replicate_indexes(&mut self) -> usize {
        let degree = self.config().replication;
        if degree <= 1 {
            return 0;
        }
        let batched = self.config().batched_publish;
        // dest replica → (summed payload bytes, records), flushed as one
        // message per destination after the walk (BTreeMap: deterministic
        // flush order).
        let mut batch: TransferBatch = BTreeMap::new();
        let holders = self.holder_snapshot();
        let mut copied = 0;
        for (holder, terms) in holders {
            if !self.net().contains(RingId(holder)) {
                continue;
            }
            for term in terms {
                let key = self.term_ring(term);
                // Only the current responsible peer fans out; replicas do
                // not re-replicate. Responsibility is established by a
                // routed lookup from the holder itself.
                let Ok(lookup) = self.net_mut().lookup_fast(RingId(holder), key) else {
                    continue;
                };
                if lookup.owner.0 != holder {
                    continue;
                }
                let entries: Vec<_> = self
                    .indexing_state(lookup.owner)
                    .map(|st| st.entries(term))
                    .unwrap_or_default();
                if entries.is_empty() {
                    continue;
                }
                let bytes: u64 = entries
                    .iter()
                    .map(|e| term_record_wire_size(term, e) as u64)
                    .sum();
                let cap = self.config().query_cache_capacity;
                let packed = self.config().packed_postings;
                let mut delta = NetStats::new();
                let replicas: Vec<RingId> = self
                    .net()
                    .replicas_from_owner(lookup.owner, degree, &mut delta)
                    .into_iter()
                    .skip(1)
                    .collect();
                self.net_mut().absorb_stats(&delta);
                for replica in replicas {
                    if batched {
                        let slot = batch.entry(replica.0).or_insert_with(|| (0, Vec::new()));
                        slot.0 += bytes;
                        slot.1.push((term, entries.clone()));
                        continue; // installed (or lost) at flush time
                    }
                    // Unbatched: one delivery-gated copy per replica.
                    let salt =
                        sim::message_salt(holder as u64, replica.0 as u64, term.index() as u64);
                    match self.net().plan_delivery(lookup.owner, replica, salt) {
                        Ok((_arrival, drops)) => {
                            if drops > 0 {
                                self.net_mut().charge_n(MsgKind::Timeout, drops);
                            }
                            self.net_mut()
                                .charge_n(MsgKind::Replication, entries.len() as u64);
                            self.net_mut().charge_bytes(MsgKind::Replication, bytes);
                        }
                        Err(drops) => {
                            self.net_mut().charge_n(MsgKind::Timeout, drops);
                            continue; // copy lost; this replica stays stale
                        }
                    }
                    let st = self
                        .indexing_mut()
                        .entry(replica.0)
                        .or_insert_with(|| IndexingState::with_packing(cap, packed));
                    for &e in &entries {
                        st.publish(term, e);
                        copied += 1;
                    }
                }
            }
        }
        copied += self.flush_transfer_batch(batch, false);
        copied
    }

    /// §7 load balancing: indexing peers report terms whose indexed
    /// document frequency exceeds `df_threshold`; every owner indexing such
    /// a term retracts it (one advisory message each) and publishes its
    /// next-best term instead. High-df terms "contribute little in the
    /// similarity calculation" anyway (tiny IDF).
    pub fn hot_term_advisory(&mut self, df_threshold: usize) -> AdvisoryReport {
        let mut report = AdvisoryReport::default();
        // Collect (term, affected docs) across all peers. Peers and terms
        // are visited in sorted order: advisory application mutates owner
        // state (exclusions, replacements), so iteration order would
        // otherwise leak HashMap randomness into published indexes.
        let mut hot: Vec<(TermId, Vec<DocId>)> = {
            let index = self.indexing_mut();
            let mut peers: Vec<&u128> = index.keys().collect();
            peers.sort_unstable();
            peers
                .into_iter()
                .map(|p| &index[p])
                .flat_map(|st| {
                    st.term_dfs()
                        .filter(|&(_, df)| df > df_threshold)
                        .map(|(t, _)| {
                            (
                                t,
                                st.postings(t)
                                    .into_iter()
                                    .flatten()
                                    .map(|e| e.doc)
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        hot.sort_unstable_by_key(|&(t, _)| t);
        report.hot_terms = hot.len();
        for (term, docs) in hot {
            for doc in docs {
                // One advisory message from the indexing peer to the owner.
                self.net_mut().charge(MsgKind::Maintenance);
                if self.apply_advisory(doc, term) {
                    report.replacements += 1;
                }
                report.retractions += 1;
            }
        }
        report
    }

    /// Apply one advisory: the owner of `doc` drops `term`, excludes it
    /// from future learning, and republishes its next-best candidate.
    /// Returns true if a replacement was published.
    fn apply_advisory(&mut self, doc: DocId, term: TermId) -> bool {
        if !self.owner_state(doc).published.contains(&term) {
            // Stale advisory (e.g. the owner already replaced the term).
            self.owner_mut(doc).excluded.insert(term);
            return false;
        }
        self.remove_term(doc, term);
        {
            let owner = self.owner_mut(doc);
            owner.published.retain(|&t| t != term);
            owner.excluded.insert(term);
        }
        // Next-best candidate under the exclusion.
        let budget = self.owner_state(doc).published.len() + 1;
        let candidates = {
            let d = self.corpus().doc(doc).clone();
            let owner = self.owner_state(doc);
            crate::learn::select_terms_excluding(&d, &owner.stats, budget, &owner.excluded)
        };
        let published = self.owner_state(doc).published.clone();
        for t in candidates {
            if !published.contains(&t) {
                self.publish_term(doc, t);
                self.owner_mut(doc).published.push(t);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpriteConfig;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};
    use sprite_ir::Query;

    fn system(replication: usize) -> SpriteSystem {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(13));
        let cfg = SpriteConfig {
            replication,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, 13);
        sys.publish_all();
        sys
    }

    #[test]
    fn failure_without_replication_loses_entries() {
        let mut sys = system(1);
        let before = sys.total_index_entries();
        let victims = sys.fail_random_peers(4, 1);
        assert_eq!(victims.len(), 4);
        assert!(
            sys.total_index_entries() < before,
            "some index entries must be lost"
        );
        // Queries still run (terms on dead peers are simply discarded, §7).
        let t = sys.published_terms(DocId(0)).first().copied();
        if let Some(t) = t {
            let _ = sys.issue_query(&Query::new(vec![t]), 10);
        }
    }

    #[test]
    fn replication_preserves_retrieval_after_failure() {
        let mut sys = system(3);
        sys.replicate_indexes();
        // Pick a (doc, term) pair and kill its responsible indexing peer.
        let doc = DocId(0);
        let term = sys.published_terms(doc)[0];
        let key = sys.term_ring(term);
        let victim = sys.net().oracle_owner(key).unwrap();
        assert!(sys.fail_peer(victim));
        // The replicas answer: doc 0 is still retrievable by that term.
        let all = sys.corpus().len();
        let hits = sys.issue_query(&Query::new(vec![term]), all);
        assert!(
            hits.iter().any(|h| h.doc == doc),
            "replication must keep doc retrievable"
        );
    }

    #[test]
    fn replicate_is_noop_at_degree_one() {
        let mut sys = system(1);
        assert_eq!(sys.replicate_indexes(), 0);
    }

    #[test]
    fn replicate_copies_every_entry_once_per_replica() {
        let mut sys = system(2);
        let copied = sys.replicate_indexes();
        // Degree 2 ⇒ one extra copy per (doc, term) entry.
        assert_eq!(copied, sys.corpus().len() * 5);
        // Re-running re-publishes the same copies (idempotent state).
        let entries_before = sys.total_index_entries();
        sys.replicate_indexes();
        assert_eq!(sys.total_index_entries(), entries_before);
    }

    #[test]
    fn fail_unknown_peer_is_false() {
        let mut sys = system(1);
        assert!(!sys.fail_peer(RingId(12345)));
    }

    #[test]
    fn fail_random_peers_reports_only_actual_removals() {
        let mut sys = system(1);
        // Make the cached peer list stale: kill six peers directly at the
        // ring, bypassing refresh_peers, so peers() still lists them.
        let stale: Vec<RingId> = sys.peers().iter().copied().take(6).collect();
        for &v in &stale {
            sys.net_mut().fail(v).unwrap();
        }
        // Ask for more failures than there are live peers: the stale six
        // must not be double-counted, and the ring must keep one survivor.
        let victims = sys.fail_random_peers(20, 99);
        assert!(
            victims.iter().all(|v| !stale.contains(v)),
            "already-dead peer reported as a fresh casualty"
        );
        assert!(victims.iter().all(|v| !sys.net().contains(*v)));
        let mut dedup = victims.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), victims.len(), "victims must be distinct");
        // 24 peers − 6 stale = 18 alive; the guard keeps the last one.
        assert_eq!(victims.len(), 17);
        assert_eq!(sys.net().len(), 1);
    }

    #[test]
    fn graceful_leave_hands_indexes_to_a_successor() {
        // Degree 1 so the heir holds no mirrored copies: the handover's
        // entry conservation is then exact.
        let mut sys = system(1);
        let holder = sys.indexing_peers()[0];
        let entries = sys.indexing_state(holder).unwrap().total_entries();
        assert!(entries > 0);
        let before_total = sys.total_index_entries();
        let copied = sys.hand_over_indexing(holder);
        assert_eq!(copied, entries, "every entry reaches the heir");
        assert!(sys.indexing_state(holder).is_none());
        assert_eq!(
            sys.total_index_entries(),
            before_total,
            "handover may merge lists but never lose entries"
        );
        assert_eq!(
            sys.net().stats().count(MsgKind::Replication) as usize,
            copied,
            "one replication message per entry shipped"
        );
    }

    #[test]
    fn maintenance_rehomes_entries_after_ownership_transfer() {
        let mut sys = system(1);
        // Join a newcomer exactly at a held term's ring position so
        // ownership of that term transfers away from its current holder.
        let holder = sys.indexing_peers()[0];
        let term = {
            let mut ts: Vec<TermId> = sys
                .indexing_state(holder)
                .unwrap()
                .term_dfs()
                .map(|(t, _)| t)
                .collect();
            ts.sort_unstable();
            ts[0]
        };
        let key = sys.term_ring(term);
        let bootstrap = sys.peers()[0];
        sys.net_mut().join(RingId(key.0), bootstrap).unwrap();
        sys.net_mut().converge(64);
        sys.refresh_peers();
        let report = sys.maintenance_round();
        assert!(report.orphans_moved >= 1, "orphaned entries must move");
        assert!(
            sys.indexed_df(term) >= 1,
            "the newcomer answers for the transferred term"
        );
    }

    #[test]
    fn churn_tick_is_deterministic_and_keeps_the_system_queryable() {
        use sprite_chord::ChurnConfig;
        let run = || {
            let mut sys = system(3);
            sys.replicate_indexes();
            let mut engine = ChurnEngine::new(ChurnConfig::default(), 21);
            let mut reports = Vec::new();
            for _ in 0..4 {
                reports.push(sys.churn_tick(&mut engine));
                sys.maintenance_round();
            }
            let t = sys.published_terms(DocId(0))[0];
            let hits = sys.issue_query(&Query::new(vec![t]), sys.corpus().len());
            (reports, sys.peers().to_vec(), hits)
        };
        let (ra, pa, ha) = run();
        let (rb, pb, hb) = run();
        assert_eq!(ra, rb);
        assert_eq!(pa, pb);
        assert_eq!(ha.len(), hb.len());
        for (a, b) in ha.iter().zip(&hb) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn maintenance_reclaims_tombstones_at_owner_and_replicas() {
        let mut sys = system(3);
        sys.replicate_indexes();
        let doc = DocId(0);
        let term = sys.published_terms(doc)[0];
        let retracted = sys.delete_document(doc);
        assert!(retracted > 0);
        // Lazy tombstones landed at the responsible peer and every replica.
        assert!(sys.pending_tombstones() >= retracted);
        let report = sys.maintenance_round();
        assert!(report.tombstones_reclaimed >= retracted);
        assert_eq!(sys.pending_tombstones(), 0, "one round clears all debt");
        // Replica repair after the reclaim must not resurrect the doc: kill
        // the responsible peer so queries fail over to replicas.
        sys.maintenance_round();
        let key = sys.term_ring(term);
        let victim = sys.net().oracle_owner(key).unwrap();
        assert!(sys.fail_peer(victim));
        sys.maintenance_round();
        let hits = sys.issue_query(&Query::new(vec![term]), sys.corpus().len());
        assert!(
            hits.iter().all(|h| h.doc != doc),
            "deleted doc resurrected through replica repair"
        );
    }

    #[test]
    fn hot_term_advisory_retracts_and_replaces() {
        let mut sys = system(1);
        // Find the hottest indexed df so the advisory flags only the top.
        let max_df = {
            let mut m = 0;
            for p in sys.peers().to_vec() {
                if let Some(st) = sys.indexing_state(p) {
                    for (_, df) in st.term_dfs() {
                        m = m.max(df);
                    }
                }
            }
            m
        };
        assert!(max_df >= 2, "tiny corpus should share some frequent terms");
        let report = sys.hot_term_advisory(max_df - 1);
        assert!(report.hot_terms >= 1);
        assert!(report.retractions >= report.hot_terms);
        assert!(report.replacements <= report.retractions);
        for i in 0..sys.corpus().len() {
            let doc = DocId(i as u32);
            let owner = sys.owner_state(doc);
            for t in &owner.excluded {
                assert!(
                    !owner.published.contains(t),
                    "excluded term still published"
                );
            }
        }
    }

    #[test]
    fn excluded_terms_stay_out_after_learning() {
        let mut sys = system(1);
        sys.hot_term_advisory(10);
        sys.learn(2);
        for i in 0..sys.corpus().len() {
            let doc = DocId(i as u32);
            let owner = sys.owner_state(doc);
            for t in &owner.excluded {
                assert!(
                    !owner.published.contains(t),
                    "excluded term republished for doc {i}"
                );
            }
        }
    }
}
