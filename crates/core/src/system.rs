//! The SPRITE system: owner and indexing peers over a Chord ring.
//!
//! Wires the substrates together into the architecture of §3:
//!
//! * **document sharing** — [`SpriteSystem::publish_all`] publishes each
//!   document's initial global index terms (top-F frequent, §5.2) to the
//!   indexing peers the ring assigns;
//! * **query processing** — [`SpriteSystem::issue_query`] resolves each
//!   keyword's indexing peer, fetches inverted lists (term frequency,
//!   document length, distinct-term count), caches the query at those peers,
//!   and ranks at the querying peer with indexed document frequency as the
//!   IDF surrogate (§4);
//! * **index tuning** — [`SpriteSystem::learning_iteration`] is the periodic
//!   §5.3 learning pass: owners poll the indexing peers of their current
//!   global terms, receive the *new* cached queries (deduplicated by the
//!   closest-hash rule of §3), run Algorithm 1, and publish/retract terms.
//!
//! The eSearch baseline of §6 is this same machinery with a static
//! configuration ([`crate::SpriteConfig::esearch`]): all terms up front,
//! no learning.

use std::collections::{BTreeMap, HashMap};

use sprite_chord::{
    sim, ChordConfig, ChordNet, MsgKind, NetStats, NullTrace, Phase, StorageBackend, TraceRecorder,
    TraceSink,
};
use sprite_corpus::DocEvent;
use sprite_ir::{Corpus, DocId, Hit, Query, Similarity, TermId};
use sprite_util::{derive_rng, EventQueue, Md5, RingId, WireSize};

use crate::config::{IdfMode, SpriteConfig};
use crate::learn;
use crate::peer::{
    posting_list_wire_size, removal_wire_size, term_record_wire_size, IndexEntry, IndexingState,
    OwnerDoc,
};
use crate::view::QueryView;

/// Outcome counters of one learning iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LearnReport {
    /// Documents whose published term set changed.
    pub docs_changed: usize,
    /// Terms newly published across all documents.
    pub terms_added: usize,
    /// Terms retracted across all documents.
    pub terms_removed: usize,
    /// Cached queries returned to owners (after deduplication).
    pub queries_returned: usize,
    /// Indexing peers polled.
    pub polls: usize,
}

/// Outcome counters of one document update ([`SpriteSystem::update_document`]
/// or [`SpriteSystem::republish_document`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Terms newly published for the updated document.
    pub terms_added: usize,
    /// Terms retracted from the distributed index.
    pub terms_removed: usize,
    /// Terms kept as-is (their index entries retain the previous
    /// version's metadata until the next republish — the staleness
    /// window the freshness study measures).
    pub terms_kept: usize,
}

/// Outcome counters of one applied document-churn tick
/// ([`SpriteSystem::apply_doc_events`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DocTickReport {
    /// Fresh documents shared.
    pub inserted: usize,
    /// Documents whose content was replaced incrementally.
    pub updated: usize,
    /// Documents retired.
    pub deleted: usize,
    /// Terms published across all events (insert seeds + update adds).
    pub terms_published: usize,
    /// Terms retracted across all events (update drops + delete sweeps).
    pub terms_retracted: usize,
}

/// A running SPRITE deployment over a simulated Chord network.
#[derive(Clone, Debug)]
pub struct SpriteSystem {
    cfg: SpriteConfig,
    corpus: Corpus,
    net: ChordNet,
    peers: Vec<RingId>,
    /// Indexing-role state per peer (keyed by ring id).
    indexing: HashMap<u128, IndexingState>,
    /// Owner-role state, one per document.
    owners: Vec<OwnerDoc>,
    /// Which peer owns (shares) each document.
    doc_owner: Vec<RingId>,
    /// Deleted-document flags, parallel to `owners`. Document ids are
    /// never reused; a deleted slot stays dead forever.
    deleted: Vec<bool>,
    /// Ring position of each term (lazily hashed).
    term_pos: Vec<Option<RingId>>,
    /// Global query sequence for incremental learning.
    query_seq: u64,
    /// Rotates the issuing peer across queries.
    issue_cursor: usize,
    /// Lazily computed exact document frequencies (ablation oracle).
    true_dfs: Option<Vec<u32>>,
    /// Per-key replica sets resolved during publishing (`oracle_replicas`
    /// re-walks the ring per call; many documents publish the same term).
    /// Invalidated whenever the membership can change.
    replica_cache: HashMap<u128, Vec<RingId>>,
    /// Installed trace recorder (observability layer). `None` — the
    /// default — makes every operation run its untraced, zero-overhead
    /// monomorphization.
    tracer: Option<TraceRecorder>,
    /// Logical clock stamped on trace events: advances once per top-level
    /// operation (publish pass, query, learning iteration), tracing on or
    /// off, so enabling tracing cannot shift any behavior.
    trace_tick: u64,
}

/// Accumulator of the destination-batched publication pipeline (§5 cost
/// reduction): per `(origin peer, destination peer, message kind)`, the
/// records and summed payload bytes bound for one batched message.
/// Records encode independently, so the batch payload is exactly the sum
/// of the per-record wire sizes the unbatched path would have charged —
/// batching changes message counts only, never byte totals. A `BTreeMap`
/// keeps the flush order deterministic without an explicit sort.
///
/// The batch carries the *records themselves*, not just their count:
/// since the event-driven delivery layer, installation at the indexing
/// peer happens at flush time, gated on the batch message actually
/// arriving — a drowned batch leaves a real hole in the index. At zero
/// loss every slot delivers, and because [`IndexingState::publish`] is an
/// order-independent sorted insert, deferring the installs to the flush is
/// unobservable there.
#[derive(Debug, Default)]
pub(crate) struct PublishBatch {
    /// (origin, destination, kind code) → (records, payload bytes).
    slots: BTreeMap<(u128, u128, u8), BatchSlot>,
}

/// One batched message in flight: the index records it carries and their
/// summed payload bytes.
type BatchSlot = (Vec<(TermId, IndexEntry)>, u64);

/// Kind codes used as `PublishBatch` keys (only data-bearing bulk kinds
/// are ever batched).
const BATCH_PUBLISH: u8 = 0;
const BATCH_REPLICATION: u8 = 1;

impl PublishBatch {
    fn add(
        &mut self,
        origin: RingId,
        dest: RingId,
        code: u8,
        term: TermId,
        entry: IndexEntry,
        bytes: u64,
    ) {
        let slot = self
            .slots
            .entry((origin.0, dest.0, code))
            .or_insert_with(|| (Vec::new(), 0));
        slot.0.push((term, entry));
        slot.1 += bytes;
    }
}

/// Run `$body` with the installed tracer as `$sink` (temporarily moved out
/// so `$self` stays mutably borrowable), or with [`NullTrace`] when tracing
/// is off. A macro because [`TraceSink`] is deliberately not object-safe —
/// dispatch happens by monomorphization, not `dyn`.
macro_rules! traced {
    ($self:ident, $sink:ident, $body:expr) => {
        match $self.tracer.take() {
            Some(mut recorder) => {
                let out = {
                    let $sink = &mut recorder;
                    $body
                };
                $self.tracer = Some(recorder);
                out
            }
            None => {
                let $sink = &mut NullTrace;
                $body
            }
        }
    };
}

impl SpriteSystem {
    /// Build a deployment: `n_peers` peers in a converged Chord ring, the
    /// corpus's documents distributed over them as owners. Nothing is
    /// published yet — call [`Self::publish_all`]. Uses the default
    /// node-state storage backend (the arena).
    #[must_use]
    pub fn build(corpus: Corpus, n_peers: usize, cfg: SpriteConfig, seed: u64) -> Self {
        Self::build_with_backend(corpus, n_peers, cfg, seed, StorageBackend::default())
    }

    /// [`Self::build`] with an explicit node-state storage backend. The
    /// backend is invisible to everything above the ring — the dual-backend
    /// tests in `sprite-audit` hold both deployments to bit-identical
    /// fingerprints — so this exists for those tests, not for tuning.
    #[must_use]
    pub fn build_with_backend(
        corpus: Corpus,
        n_peers: usize,
        cfg: SpriteConfig,
        seed: u64,
        backend: StorageBackend,
    ) -> Self {
        assert!(n_peers > 0, "need at least one peer");
        let chord_cfg = ChordConfig {
            backend,
            ..ChordConfig::default()
        };
        let net = ChordNet::with_random_nodes(chord_cfg, n_peers, seed);
        let peers = net.node_ids();
        let mut rng = derive_rng(seed, "doc-owners");
        let doc_owner: Vec<RingId> = (0..corpus.len())
            .map(|_| peers[rng.gen_range(0..peers.len())])
            .collect();
        let owners = (0..corpus.len())
            .map(|i| OwnerDoc::new(DocId(i as u32)))
            .collect();
        let term_pos = vec![None; corpus.vocab().len()];
        let deleted = vec![false; corpus.len()];
        SpriteSystem {
            cfg,
            corpus,
            net,
            peers,
            indexing: HashMap::new(),
            owners,
            doc_owner,
            deleted,
            term_pos,
            query_seq: 0,
            issue_cursor: 0,
            true_dfs: None,
            replica_cache: HashMap::new(),
            tracer: None,
            trace_tick: 0,
        }
    }

    // ------------------------------------------------------------------
    // Tracing (observability layer)
    // ------------------------------------------------------------------

    /// Install a fresh [`TraceRecorder`]: subsequent operations emit events
    /// into it. Tracing is observation only — results and `NetStats` are
    /// bit-identical with and without it (audited by `sprite-audit`).
    pub fn enable_tracing(&mut self) {
        if self.tracer.is_none() {
            self.tracer = Some(TraceRecorder::new());
        }
    }

    /// Remove and return the installed recorder (tracing turns off).
    pub fn take_tracer(&mut self) -> Option<TraceRecorder> {
        self.tracer.take()
    }

    /// The installed recorder, if tracing is on.
    #[must_use]
    pub fn tracer(&self) -> Option<&TraceRecorder> {
        self.tracer.as_ref()
    }

    /// Advance the logical trace clock (once per top-level operation,
    /// tracing on or off).
    fn next_tick(&mut self) -> u64 {
        let t = self.trace_tick;
        self.trace_tick += 1;
        t
    }

    /// Start of a coarse traced span (maintenance round, churn tick): a
    /// stats snapshot when tracing is on, `None` otherwise.
    pub(crate) fn trace_span_start(&self) -> Option<NetStats> {
        self.tracer.as_ref().map(|_| self.net.stats().clone())
    }

    /// End of a coarse traced span: attribute every message charged since
    /// `start` to `phase`. Deriving the events from the accounting diff
    /// means span traces cannot diverge from `NetStats`.
    pub(crate) fn trace_span_end(&mut self, phase: Phase, start: Option<NetStats>) {
        if let (Some(before), Some(recorder)) = (start, self.tracer.as_mut()) {
            let after = self.net.stats().clone();
            recorder.absorb_span(phase, &before, &after);
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SpriteConfig {
        &self.cfg
    }

    /// The corpus this deployment shares.
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The underlying network (message statistics live here).
    #[must_use]
    pub fn net(&self) -> &ChordNet {
        &self.net
    }

    /// Mutable network access (churn injection in experiments). Any caller
    /// may change the membership, so the replica cache is dropped.
    pub fn net_mut(&mut self) -> &mut ChordNet {
        self.replica_cache.clear();
        &mut self.net
    }

    /// Alive peers, ring order.
    #[must_use]
    pub fn peers(&self) -> &[RingId] {
        &self.peers
    }

    /// The peer owning (sharing) `doc`.
    #[must_use]
    pub fn owner_peer(&self, doc: DocId) -> RingId {
        self.doc_owner[doc.index()]
    }

    /// The currently published global index terms of `doc`, rank order.
    #[must_use]
    pub fn published_terms(&self, doc: DocId) -> &[TermId] {
        &self.owners[doc.index()].published
    }

    /// Owner-side learning state of `doc`.
    #[must_use]
    pub fn owner_state(&self, doc: DocId) -> &OwnerDoc {
        &self.owners[doc.index()]
    }

    /// Total inverted-list entries across all indexing peers (index size).
    #[must_use]
    pub fn total_index_entries(&self) -> usize {
        self.indexing
            .values()
            .map(IndexingState::total_entries)
            .sum()
    }

    /// Tombstoned entries awaiting the lazy cleanup pass, across every
    /// indexing peer. The audit invariant: after one `maintenance_round`
    /// this is zero again.
    #[must_use]
    pub fn pending_tombstones(&self) -> usize {
        self.indexing
            .values()
            .map(IndexingState::pending_tombstones)
            .sum()
    }

    /// The staleness window of the incremental update path, measured:
    /// `(stale, total)` live index entries, where an entry is *stale*
    /// when its stored metadata (term frequency, document length) no
    /// longer matches the document's current content. Kept terms are not
    /// republished on update — their entries age until the next learning
    /// pass or full republish — so this counts exactly the entries
    /// serving outdated ranking metadata. Tombstoned entries are
    /// invisible and excluded; replicas count per copy.
    #[must_use]
    pub fn stale_index_entries(&self) -> (u64, u64) {
        let (mut stale, mut total) = (0u64, 0u64);
        // Sorted peer walk: counting is commutative, but every index scan
        // in this crate runs in a reproducible order by convention.
        let mut peers: Vec<&u128> = self.indexing.keys().collect();
        peers.sort_unstable();
        for p in peers {
            let st = &self.indexing[p];
            let mut terms: Vec<TermId> = st.term_dfs().map(|(t, _)| t).collect();
            terms.sort_unstable();
            for term in terms {
                for e in st.entries(term) {
                    total += 1;
                    let d = self.corpus.doc(e.doc);
                    if e.tf != d.freq(term) || e.doc_len != d.len() {
                        stale += 1;
                    }
                }
            }
        }
        (stale, total)
    }

    /// Deterministic *logical* bytes of every inverted index in the
    /// deployment, as stored (encoded length for packed lists, the fixed
    /// per-entry cost for plain ones). Length-based — a pure function of
    /// the deployment's contents — so the memory-per-peer metric gates
    /// on it exactly.
    #[must_use]
    pub fn logical_index_bytes(&self) -> u64 {
        self.indexing
            .values()
            .map(IndexingState::logical_index_bytes)
            .sum()
    }

    /// What [`Self::logical_index_bytes`] would be if every list were
    /// stored plain — the numerator of the compression ratio, counted
    /// over the same contents.
    #[must_use]
    pub fn plain_index_bytes(&self) -> u64 {
        self.indexing
            .values()
            .map(|st| {
                4 * st.indexed_terms() as u64
                    + st.total_entries() as u64 * crate::postings::PLAIN_ENTRY_BYTES
            })
            .sum()
    }

    /// Compute the exact per-term document frequencies once (the ablation
    /// oracle). Idempotent; also called before freezing a [`QueryView`] in
    /// true-df mode so the snapshot never needs lazy mutation.
    pub fn ensure_true_dfs(&mut self) {
        if self.true_dfs.is_none() {
            let mut dfs = vec![0u32; self.corpus.vocab().len()];
            for d in self.corpus.docs() {
                if self.deleted[d.id.index()] {
                    continue; // deleted documents leave the oracle too
                }
                for &(t, _) in d.terms() {
                    dfs[t.index()] += 1;
                }
            }
            self.true_dfs = Some(dfs);
        }
    }

    /// Exact corpus document frequency of `term` (the ablation oracle;
    /// computed once on first use).
    pub fn true_df(&mut self, term: TermId) -> usize {
        self.ensure_true_dfs();
        self.true_dfs.as_ref().expect("just filled")[term.index()] as usize
    }

    /// Ring position of a term (MD5 of its string form, cached).
    pub fn term_ring(&mut self, term: TermId) -> RingId {
        if let Some(p) = self.term_pos[term.index()] {
            return p;
        }
        let p = RingId::hash_term(self.corpus.vocab().term(term));
        self.term_pos[term.index()] = Some(p);
        p
    }

    /// Pre-hash the ring positions of every term in `queries` so a
    /// subsequent [`Self::query_view`] fan-out finds them all memoized
    /// (the view's fallback re-hashes per query per thread otherwise).
    pub fn warm_query_terms<'q, I>(&mut self, queries: I)
    where
        I: IntoIterator<Item = &'q Query>,
    {
        for q in queries {
            for (t, _) in q.term_counts() {
                let _ = self.term_ring(t);
            }
        }
    }

    /// Freeze the deployment into a read-only [`QueryView`] for concurrent
    /// ranking. Takes `&mut self` only to finish lazy bookkeeping first
    /// (the true-df oracle in [`IdfMode::TrueDf`] mode); the returned view
    /// holds shared borrows, so any number of threads may rank against it,
    /// and the borrow checker keeps learning and churn out until it drops.
    pub fn query_view(&mut self) -> QueryView<'_> {
        if self.cfg.idf_mode == IdfMode::TrueDf {
            self.ensure_true_dfs();
        }
        QueryView::new(
            &self.cfg,
            &self.net,
            &self.indexing,
            &self.corpus,
            &self.peers,
            &self.term_pos,
            self.true_dfs.as_deref(),
        )
    }

    /// The §7 replica set of `key` (owner first), resolved by walking the
    /// routed owner's successor chain and memoized per key: many documents
    /// publish the same term, and the walk is identical for all of them
    /// until churn. The walk's Maintenance/Timeout probes are charged on
    /// first resolution only — a peer remembering the replica set it just
    /// learned, exactly like a real cache.
    fn replicas_of<T: TraceSink>(
        &mut self,
        key: RingId,
        owner: RingId,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) -> Vec<RingId> {
        if let Some(r) = self.replica_cache.get(&key.0) {
            return r.clone();
        }
        let mut delta = NetStats::new();
        let r = self.net.replicas_from_owner_traced(
            owner,
            self.cfg.replication,
            &mut delta,
            phase,
            tick,
            sink,
        );
        self.net.absorb_stats(&delta);
        self.replica_cache.insert(key.0, r.clone());
        r
    }

    /// MD5 of a query's canonical form (sorted term strings joined by a
    /// space) — precomputable offline by any peer, as §3 notes.
    pub fn query_hash(&mut self, query: &Query) -> RingId {
        let mut h = Md5::new();
        let mut first = true;
        for (t, _) in query.term_counts() {
            if !first {
                h.update(b" ");
            }
            h.update(self.corpus.vocab().term(t).as_bytes());
            first = false;
        }
        RingId(h.finalize().as_u128())
    }

    // ------------------------------------------------------------------
    // Document sharing
    // ------------------------------------------------------------------

    /// Publish the initial global index terms (top-F frequent, §5.2) for
    /// every document. Idempotent per document: already-published documents
    /// are skipped.
    pub fn publish_all(&mut self) {
        let tick = self.next_tick();
        let batched = self.cfg.batched_publish;
        traced!(self, sink, {
            let mut batch = PublishBatch::default();
            for i in 0..self.corpus.len() {
                let doc = DocId(i as u32);
                if self.deleted[i] || !self.owners[i].published.is_empty() {
                    continue;
                }
                let initial = self
                    .corpus
                    .doc(doc)
                    .top_frequent_terms(self.cfg.initial_terms);
                for &t in &initial {
                    if batched {
                        self.publish_term_impl(
                            doc,
                            t,
                            Phase::Publish,
                            tick,
                            sink,
                            Some(&mut batch),
                        );
                    } else {
                        self.publish_term_with(doc, t, Phase::Publish, tick, sink);
                    }
                }
                self.owners[i].published = initial;
                self.debug_validate_owner(doc);
            }
            self.flush_publish_batch(batch, Phase::Publish, tick, sink);
        });
    }

    /// Publish one `(doc, term)` index entry: route to the responsible
    /// peer, store the §5.1 metadata there, replicate if configured.
    pub(crate) fn publish_term(&mut self, doc: DocId, term: TermId) {
        let tick = self.trace_tick;
        traced!(
            self,
            sink,
            self.publish_term_with(doc, term, Phase::Publish, tick, sink)
        );
    }

    /// [`Self::publish_term`] under an explicit phase/sink — the traced
    /// core every publishing caller (initial share, learning diff,
    /// advisory replacement) funnels through.
    fn publish_term_with<T: TraceSink>(
        &mut self,
        doc: DocId,
        term: TermId,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) {
        self.publish_term_impl(doc, term, phase, tick, sink, None);
    }

    /// The publishing core. With `batch: None`, every record is its own
    /// message (plus its payload bytes), sent through the delivery layer
    /// immediately. With a batch, routing and payload bytes are identical,
    /// but message charges *and index installation* are deferred into the
    /// accumulator for a per-destination flush through the event scheduler
    /// — at zero loss the index contents cannot differ because
    /// [`IndexingState::publish`] is an order-independent sorted insert,
    /// while under loss a drowned message leaves its records unindexed.
    fn publish_term_impl<T: TraceSink>(
        &mut self,
        doc: DocId,
        term: TermId,
        phase: Phase,
        tick: u64,
        sink: &mut T,
        mut batch: Option<&mut PublishBatch>,
    ) {
        let owner_peer = self.doc_owner[doc.index()];
        let key = self.term_ring(term);
        let Ok(lookup) = self
            .net
            .lookup_fast_traced(owner_peer, key, phase, tick, sink)
        else {
            return; // unroutable during heavy churn; retried on next iteration
        };
        let d = self.corpus.doc(doc);
        let entry = IndexEntry {
            doc,
            owner: owner_peer,
            tf: d.freq(term),
            doc_len: d.len(),
            distinct: d.distinct_terms() as u32,
        };
        let record = term_record_wire_size(term, &entry) as u64;
        match batch.as_deref_mut() {
            Some(b) => b.add(owner_peer, lookup.owner, BATCH_PUBLISH, term, entry, record),
            None => {
                let salt = sim::message_salt(tick, key.0 as u64, u64::from(doc.0));
                if self.send_record(
                    owner_peer,
                    lookup.owner,
                    MsgKind::IndexPublish,
                    record,
                    salt,
                    phase,
                    tick,
                    sink,
                ) {
                    self.install_entry(lookup.owner, term, entry);
                }
            }
        }
        if self.cfg.replication > 1 {
            for peer in self
                .replicas_of(key, lookup.owner, phase, tick, sink)
                .into_iter()
                .skip(1)
            {
                match batch.as_deref_mut() {
                    Some(b) => b.add(owner_peer, peer, BATCH_REPLICATION, term, entry, record),
                    None => {
                        let salt = sim::message_salt(tick, peer.0 as u64, u64::from(doc.0));
                        if self.send_record(
                            owner_peer,
                            peer,
                            MsgKind::Replication,
                            record,
                            salt,
                            phase,
                            tick,
                            sink,
                        ) {
                            self.install_entry(peer, term, entry);
                        }
                    }
                }
            }
        }
    }

    /// Store one index record at `peer` (order-independent sorted insert).
    fn install_entry(&mut self, peer: RingId, term: TermId, entry: IndexEntry) {
        let cap = self.cfg.query_cache_capacity;
        let packed = self.cfg.packed_postings;
        self.indexing
            .entry(peer.0)
            .or_insert_with(|| IndexingState::with_packing(cap, packed))
            .publish(term, entry);
    }

    /// Send one data-bearing record `origin → dest` through the delivery
    /// layer: dropped transmissions bill real [`MsgKind::Timeout`]s, a
    /// delivered message bills its kind plus payload bytes. Returns whether
    /// the record arrived (the perfect default always delivers, with
    /// charges identical to the pre-scheduler pipeline).
    #[allow(clippy::too_many_arguments)]
    fn send_record<T: TraceSink>(
        &mut self,
        origin: RingId,
        dest: RingId,
        kind: MsgKind,
        bytes: u64,
        salt: u64,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) -> bool {
        let (drops, delivered) = match self.net.plan_delivery(origin, dest, salt) {
            Ok((_arrival, drops)) => (drops, true),
            Err(drops) => (drops, false),
        };
        if drops > 0 {
            self.net
                .charge_n_traced(MsgKind::Timeout, phase, tick, dest, drops, sink);
        }
        if delivered {
            self.net.charge_traced(kind, phase, tick, dest, sink);
            self.net.charge_bytes_traced(kind, bytes, sink);
        }
        delivered
    }

    /// Flush a [`PublishBatch`] through the event scheduler: each
    /// `(origin, destination, kind)` slot becomes one in-flight message
    /// scheduled at its modeled arrival time and processed in `(time, seq)`
    /// order. At zero latency every arrival is `t = 0` and pop order is
    /// push (slot-key) order — exactly the lockstep flush this replaced.
    /// A drowned slot bills only its retransmission timeouts: its records
    /// are never installed, so the index genuinely loses them.
    fn flush_publish_batch<T: TraceSink>(
        &mut self,
        batch: PublishBatch,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) {
        let mut queue = EventQueue::new();
        for ((origin, dest, code), (records, bytes)) in batch.slots {
            let salt = sim::message_salt(tick, dest as u64 ^ (dest >> 64) as u64, u64::from(code));
            let (arrival, drops, delivered) =
                match self.net.plan_delivery(RingId(origin), RingId(dest), salt) {
                    Ok((arrival, drops)) => (arrival, drops, true),
                    Err(drops) => (0, drops, false),
                };
            queue.push(arrival, (dest, code, records, bytes, drops, delivered));
        }
        while let Some((_, (dest, code, records, bytes, drops, delivered))) = queue.pop() {
            let kind = if code == BATCH_PUBLISH {
                MsgKind::IndexPublish
            } else {
                MsgKind::Replication
            };
            if drops > 0 {
                self.net
                    .charge_n_traced(MsgKind::Timeout, phase, tick, RingId(dest), drops, sink);
            }
            if !delivered {
                continue; // the batch drowned; its records never arrive
            }
            self.net
                .charge_traced(kind, phase, tick, RingId(dest), sink);
            self.net.charge_bytes_traced(kind, bytes, sink);
            for (term, entry) in records {
                self.install_entry(RingId(dest), term, entry);
            }
        }
    }

    /// Retract one `(doc, term)` index entry from the responsible peer and
    /// any replicas.
    pub(crate) fn remove_term(&mut self, doc: DocId, term: TermId) {
        let tick = self.trace_tick;
        traced!(
            self,
            sink,
            self.remove_term_with(doc, term, Phase::Publish, tick, sink)
        );
    }

    /// Retire `doc` from the distributed index: retract every published
    /// `(doc, term)` entry from its responsible peer and any replicas —
    /// each retraction billed as [`MsgKind::IndexRemove`] plus its wire
    /// bytes through the traced charge path — then clear the owner's
    /// published set so a later [`Self::publish_all`] republishes the
    /// document from scratch. Returns the number of terms retracted.
    pub fn unpublish_document(&mut self, doc: DocId) -> usize {
        let tick = self.trace_tick;
        let terms = self.owners[doc.index()].published.clone();
        traced!(self, sink, {
            for &t in &terms {
                self.remove_term_with(doc, t, Phase::Publish, tick, sink);
            }
        });
        self.owners[doc.index()].published.clear();
        terms.len()
    }

    // ------------------------------------------------------------------
    // Document lifecycle (live corpus dynamics)
    // ------------------------------------------------------------------

    /// True when `doc` has been deleted from the deployment. Document
    /// ids are never reused, so a deleted slot stays dead forever.
    #[must_use]
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted[doc.index()]
    }

    /// Documents currently shared (never-deleted ids, ascending).
    #[must_use]
    pub fn live_docs(&self) -> Vec<DocId> {
        (0..self.corpus.len())
            .map(|i| DocId(i as u32))
            .filter(|d| !self.deleted[d.index()])
            .collect()
    }

    /// Share a brand-new document: append it to the corpus, assign an
    /// owner peer deterministically (hash of the document id — late
    /// arrivals must not consume the build-time RNG stream), and publish
    /// its initial top-F frequent terms through the billed publish path.
    /// Returns the new id.
    pub fn insert_document(&mut self, terms: Vec<(TermId, u32)>) -> DocId {
        let doc = self.corpus.add_document(terms);
        let key = RingId::hash_bytes(format!("doc-owner-{}", doc.index()).as_bytes());
        let owner_peer = self.peers[(key.0 % self.peers.len() as u128) as usize];
        self.doc_owner.push(owner_peer);
        self.owners.push(OwnerDoc::new(doc));
        self.deleted.push(false);
        if self.term_pos.len() < self.corpus.vocab().len() {
            self.term_pos.resize(self.corpus.vocab().len(), None);
        }
        self.true_dfs = None;
        let tick = self.next_tick();
        let initial = self
            .corpus
            .doc(doc)
            .top_frequent_terms(self.cfg.initial_terms);
        traced!(self, sink, {
            for &t in &initial {
                self.publish_term_with(doc, t, Phase::Publish, tick, sink);
            }
        });
        self.owners[doc.index()].published = initial;
        self.debug_validate_owner(doc);
        doc
    }

    /// Modify a shared document **incrementally**: replace its corpus
    /// contents, re-select its global index terms against the new
    /// version (learned statistics for vanished terms are dropped —
    /// `qScore` measures fit to content that no longer exists), then
    /// publish only the added terms and retract only the removed ones,
    /// billing exact wire bytes for both directions. Kept terms are
    /// *not* republished: their index entries retain the previous
    /// version's metadata until the next learning pass or republish —
    /// the staleness window the freshness study measures.
    ///
    /// # Panics
    /// Panics if `doc` was deleted.
    pub fn update_document(&mut self, doc: DocId, terms: Vec<(TermId, u32)>) -> UpdateReport {
        assert!(!self.deleted[doc.index()], "cannot update deleted {doc:?}");
        self.corpus.replace_document(doc, terms);
        self.true_dfs = None;
        let old = self.owners[doc.index()].published.clone();
        {
            let d = self.corpus.doc(doc);
            let owner = &mut self.owners[doc.index()];
            owner.stats.retain(|t, _| d.contains(*t));
        }
        let new_terms = self.reselect_terms(doc, old.len());
        let lazy = self.cfg.lazy_tombstones;
        let tick = self.next_tick();
        let mut report = UpdateReport::default();
        traced!(self, sink, {
            for &t in &new_terms {
                if !old.contains(&t) {
                    self.publish_term_with(doc, t, Phase::Publish, tick, sink);
                    report.terms_added += 1;
                }
            }
            for &t in &old {
                if !new_terms.contains(&t) {
                    self.retract_term_with(doc, t, lazy, Phase::Publish, tick, sink);
                    report.terms_removed += 1;
                }
            }
        });
        report.terms_kept = new_terms.len() - report.terms_added;
        self.owners[doc.index()].published = new_terms;
        self.debug_validate_owner(doc);
        report
    }

    /// Modify a shared document the **expensive** way: retract every
    /// published term, replace the contents, and publish the new
    /// selection from scratch — the delete+republish baseline the
    /// incremental [`Self::update_document`] is measured against.
    ///
    /// # Panics
    /// Panics if `doc` was deleted.
    pub fn republish_document(&mut self, doc: DocId, terms: Vec<(TermId, u32)>) -> UpdateReport {
        assert!(
            !self.deleted[doc.index()],
            "cannot republish deleted {doc:?}"
        );
        let old = self.owners[doc.index()].published.clone();
        let lazy = self.cfg.lazy_tombstones;
        let tick = self.next_tick();
        traced!(self, sink, {
            for &t in &old {
                self.retract_term_with(doc, t, lazy, Phase::Publish, tick, sink);
            }
        });
        self.corpus.replace_document(doc, terms);
        self.true_dfs = None;
        {
            let d = self.corpus.doc(doc);
            let owner = &mut self.owners[doc.index()];
            owner.stats.retain(|t, _| d.contains(*t));
        }
        let new_terms = self.reselect_terms(doc, old.len());
        traced!(self, sink, {
            for &t in &new_terms {
                self.publish_term_with(doc, t, Phase::Publish, tick, sink);
            }
        });
        let report = UpdateReport {
            terms_added: new_terms.len(),
            terms_removed: old.len(),
            terms_kept: 0,
        };
        self.owners[doc.index()].published = new_terms;
        self.debug_validate_owner(doc);
        report
    }

    /// Retire `doc` permanently: retract every published term —
    /// tombstoning the index entries when
    /// [`crate::SpriteConfig::lazy_tombstones`] is on, rewriting the
    /// lists eagerly otherwise — clear the owner state, and mark the id
    /// dead so no later pass (publish, learning, orphan repair) can
    /// resurrect it. Returns the number of terms retracted.
    pub fn delete_document(&mut self, doc: DocId) -> usize {
        if self.deleted[doc.index()] {
            return 0;
        }
        let terms = self.owners[doc.index()].published.clone();
        let lazy = self.cfg.lazy_tombstones;
        let tick = self.next_tick();
        traced!(self, sink, {
            for &t in &terms {
                self.retract_term_with(doc, t, lazy, Phase::Publish, tick, sink);
            }
        });
        let owner = &mut self.owners[doc.index()];
        owner.published.clear();
        owner.stats.clear();
        owner.term_watermarks.clear();
        self.deleted[doc.index()] = true;
        self.true_dfs = None;
        terms.len()
    }

    /// Apply one planned document-churn tick (a
    /// `sprite_corpus::DocChurnEngine` plan) through the billed lifecycle
    /// paths: inserts share fresh documents, updates re-publish
    /// incrementally, deletes retract and tombstone. Events apply in plan
    /// order; an update whose victim was deleted by an earlier tick is
    /// skipped (the engine never plans both in *one* tick, but callers
    /// may interleave plans with other deletion sources).
    pub fn apply_doc_events(&mut self, events: &[DocEvent]) -> DocTickReport {
        let mut report = DocTickReport::default();
        for ev in events {
            match ev {
                DocEvent::Insert { terms } => {
                    let doc = self.insert_document(terms.clone());
                    report.inserted += 1;
                    report.terms_published += self.owners[doc.index()].published.len();
                }
                DocEvent::Update { doc, terms } => {
                    if self.deleted[doc.index()] {
                        continue;
                    }
                    let r = self.update_document(*doc, terms.clone());
                    report.updated += 1;
                    report.terms_published += r.terms_added;
                    report.terms_retracted += r.terms_removed;
                }
                DocEvent::Delete { doc } => {
                    report.terms_retracted += self.delete_document(*doc);
                    report.deleted += 1;
                }
            }
        }
        report
    }

    /// Re-select the global index terms of `doc` after a content change:
    /// the same [`learn::select_terms_mode`] the learning pass uses, at a
    /// budget that preserves the document's earned term count (never
    /// below the initial allocation, never above the cap). With no
    /// learned statistics this degrades to pure top-frequent selection —
    /// exactly the §5.2 seeding of a fresh document.
    fn reselect_terms(&mut self, doc: DocId, earned: usize) -> Vec<TermId> {
        let budget = earned.max(self.cfg.initial_terms).min(self.cfg.max_terms);
        let d = self.corpus.doc(doc);
        let owner = &self.owners[doc.index()];
        learn::select_terms_mode(
            d,
            &owner.stats,
            budget,
            &owner.excluded,
            self.cfg.score_mode,
        )
    }

    /// Bill one query-expansion document fetch from `peer` through the
    /// traced charge path, so the observability layer sees exactly what
    /// the accounting sees (§7 local context analysis downloads the term
    /// vectors of the top-ranked documents from their owner peers).
    pub(crate) fn charge_doc_fetch_traced(&mut self, peer: RingId) {
        let tick = self.trace_tick;
        traced!(
            self,
            sink,
            self.net
                .charge_traced(MsgKind::QueryFetch, Phase::Query, tick, peer, sink)
        );
    }

    /// [`Self::remove_term`] under an explicit phase/sink (always eager).
    fn remove_term_with<T: TraceSink>(
        &mut self,
        doc: DocId,
        term: TermId,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) {
        self.retract_term_with(doc, term, false, phase, tick, sink);
    }

    /// The retraction core: route to the responsible peer, bill one
    /// [`MsgKind::IndexRemove`] plus the record's exact wire bytes there
    /// and at every replica, and take the entry out of each index —
    /// eagerly (`lazy = false`: the stored list is rewritten on the
    /// spot) or lazily (`lazy = true`: the entry is tombstoned and the
    /// next `maintenance_round` reclaims it). The removal record on the
    /// wire is identical either way; only the indexing peer's local
    /// write strategy differs.
    fn retract_term_with<T: TraceSink>(
        &mut self,
        doc: DocId,
        term: TermId,
        lazy: bool,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) {
        let owner_peer = self.doc_owner[doc.index()];
        let key = self.term_ring(term);
        let Ok(lookup) = self
            .net
            .lookup_fast_traced(owner_peer, key, phase, tick, sink)
        else {
            return;
        };
        let record = removal_wire_size(term, doc) as u64;
        self.net
            .charge_traced(MsgKind::IndexRemove, phase, tick, lookup.owner, sink);
        self.net
            .charge_bytes_traced(MsgKind::IndexRemove, record, sink);
        if let Some(st) = self.indexing.get_mut(&lookup.owner.0) {
            if lazy {
                st.tombstone(term, doc);
            } else {
                st.remove(term, doc);
            }
        }
        if self.cfg.replication > 1 {
            for peer in self
                .replicas_of(key, lookup.owner, phase, tick, sink)
                .into_iter()
                .skip(1)
            {
                self.net
                    .charge_traced(MsgKind::IndexRemove, phase, tick, peer, sink);
                self.net
                    .charge_bytes_traced(MsgKind::IndexRemove, record, sink);
                if let Some(st) = self.indexing.get_mut(&peer.0) {
                    if lazy {
                        st.tombstone(term, doc);
                    } else {
                        st.remove(term, doc);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Query processing (§4)
    // ------------------------------------------------------------------

    /// Issue `query` from the next querying peer (round-robin) and return
    /// the top `k` ranked documents.
    pub fn issue_query(&mut self, query: &Query, k: usize) -> Vec<Hit> {
        let from = self.peers[self.issue_cursor % self.peers.len()];
        self.issue_cursor += 1;
        self.issue_query_from(from, query, k)
    }

    /// Issue `query` from a specific peer.
    pub fn issue_query_from(&mut self, from: RingId, query: &Query, k: usize) -> Vec<Hit> {
        let tick = self.next_tick();
        traced!(
            self,
            sink,
            self.issue_query_from_with(from, query, k, tick, sink)
        )
    }

    /// [`Self::issue_query_from`] under an explicit sink — results and
    /// charges are bit-identical whether the sink records or not.
    fn issue_query_from_with<T: TraceSink>(
        &mut self,
        from: RingId,
        query: &Query,
        k: usize,
        tick: u64,
        sink: &mut T,
    ) -> Vec<Hit> {
        if query.is_empty() || !self.net.contains(from) {
            return Vec::new();
        }
        self.query_seq += 1;
        let seq = self.query_seq;
        let qhash = self.query_hash(query);
        let msgs_before = self.net.stats().total_messages();
        let mut replicas_probed: u64 = 0;

        // Phase 1 — contact each keyword's indexing peer: fetch the inverted
        // list and leave the query in that peer's history.
        struct TermFetch {
            term: TermId,
            qtf: u32,
            entries: Vec<IndexEntry>,
        }
        let mut fetches: Vec<TermFetch> = Vec::with_capacity(query.distinct_len());
        for (term, qtf) in query.term_counts() {
            let key = self.term_ring(term);
            let lookup = match self
                .net
                .lookup_fast_traced(from, key, Phase::Query, tick, sink)
            {
                Ok(l) => l,
                Err(_) => {
                    // §7 degradation: the routed walk dead-ended (every
                    // successor-list entry probed was dead). Charge the
                    // abandoned retry and drop the keyword — ranking
                    // proceeds on the terms that are still reachable.
                    self.net
                        .charge_traced(MsgKind::Timeout, Phase::Query, tick, from, sink);
                    continue;
                }
            };
            self.net
                .charge_traced(MsgKind::QueryFetch, Phase::Query, tick, lookup.owner, sink);
            let cap = self.cfg.query_cache_capacity;
            let packed = self.cfg.packed_postings;
            let st = self
                .indexing
                .entry(lookup.owner.0)
                .or_insert_with(|| IndexingState::with_packing(cap, packed));
            st.cache_query(query.clone(), qhash, seq);
            let mut entries = st.entries(term);
            // Every fetch response bills its exact wire size: the empty
            // list is a single zero-count byte.
            self.net.charge_bytes_traced(
                MsgKind::QueryFetch,
                posting_list_wire_size(&entries) as u64,
                sink,
            );
            // Failover when the routed peer holds no list (it may have
            // taken over an arc after a failure, §7): walk the owner's
            // successor chain — never the oracle — and retry each live
            // replica in turn. A fully-dead replica set leaves the term
            // with no entries; ranking degrades to partial results.
            if entries.is_empty() && self.cfg.replication > 1 {
                let mut delta = NetStats::new();
                let replicas = self.net.replicas_from_owner_traced(
                    lookup.owner,
                    self.cfg.replication,
                    &mut delta,
                    Phase::Query,
                    tick,
                    sink,
                );
                self.net.absorb_stats(&delta);
                for peer in replicas.into_iter().skip(1) {
                    self.net
                        .charge_traced(MsgKind::QueryFetch, Phase::Query, tick, peer, sink);
                    replicas_probed += 1;
                    let list = self
                        .indexing
                        .get(&peer.0)
                        .map(|rep| rep.entries(term))
                        .unwrap_or_default();
                    self.net.charge_bytes_traced(
                        MsgKind::QueryFetch,
                        posting_list_wire_size(&list) as u64,
                        sink,
                    );
                    if !list.is_empty() {
                        entries = list;
                        break;
                    }
                }
            }
            fetches.push(TermFetch { term, qtf, entries });
        }

        // Phase 2 — consolidate at the querying peer and rank (§4): indexed
        // document frequency as n′_k, the assumed large N, Lee similarity.
        let n = self.cfg.assumed_n;
        let mut dot: HashMap<DocId, f64> = HashMap::new();
        let mut norm_sq: HashMap<DocId, f64> = HashMap::new();
        let mut meta: HashMap<DocId, u32> = HashMap::new();
        for f in &fetches {
            let df = match self.cfg.idf_mode {
                crate::config::IdfMode::Indexed => f.entries.len(),
                crate::config::IdfMode::TrueDf => self.true_df(f.term),
            };
            if df == 0 || f.entries.is_empty() {
                continue;
            }
            let idf = (n / df as f64).ln();
            if idf <= 0.0 {
                continue;
            }
            let w_q = f64::from(f.qtf) * idf;
            for e in &f.entries {
                let w_d = if e.doc_len == 0 {
                    0.0
                } else {
                    (f64::from(e.tf) / f64::from(e.doc_len)) * idf
                };
                *dot.entry(e.doc).or_insert(0.0) += w_q * w_d;
                *norm_sq.entry(e.doc).or_insert(0.0) += w_d * w_d;
                meta.insert(e.doc, e.distinct);
            }
        }
        let mut hits: Vec<Hit> = dot
            .into_iter()
            .map(|(doc, num)| {
                let denom = match self.cfg.similarity {
                    Similarity::LeeSecond => f64::from(meta[&doc]).sqrt(),
                    // Distributed cosine can only normalize over the
                    // *retrieved* term weights (ablation configuration).
                    Similarity::CosineTfIdf => norm_sq[&doc].sqrt(),
                };
                let score = if denom > 0.0 { num / denom } else { 0.0 };
                Hit { doc, score }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        if T::ENABLED {
            sink.query_done(
                self.net.stats().total_messages() - msgs_before,
                replicas_probed,
                hits.len(),
            );
        }
        hits
    }

    /// Keyword search by string (exact vocabulary lookup; apply the same
    /// analysis used at corpus construction before calling). Unknown words
    /// are ignored.
    pub fn search(&mut self, words: &[&str], k: usize) -> Vec<Hit> {
        let terms: Vec<TermId> = words
            .iter()
            .filter_map(|w| self.corpus.vocab().get(w))
            .collect();
        if terms.is_empty() {
            return Vec::new();
        }
        self.issue_query(&Query::new(terms), k)
    }

    // ------------------------------------------------------------------
    // Learning (§5.3)
    // ------------------------------------------------------------------

    /// One periodic learning pass over every shared document. Static
    /// configurations (eSearch) return an empty report without touching
    /// the network.
    pub fn learning_iteration(&mut self) -> LearnReport {
        let tick = self.next_tick();
        traced!(self, sink, self.learning_iteration_with(tick, sink))
    }

    /// [`Self::learning_iteration`] under an explicit sink.
    fn learning_iteration_with<T: TraceSink>(&mut self, tick: u64, sink: &mut T) -> LearnReport {
        let mut report = LearnReport::default();
        if self.cfg.is_static() {
            return report;
        }
        let seq_now = self.query_seq;
        for i in 0..self.corpus.len() {
            let doc = DocId(i as u32);
            let published = self.owners[i].published.clone();
            if published.is_empty() {
                continue;
            }
            let owner_peer = self.doc_owner[i];
            if !self.net.contains(owner_peer) {
                continue; // owner offline: its documents stop learning
            }

            // Group the document's global terms by responsible indexing peer.
            let mut by_peer: HashMap<u128, Vec<TermId>> = HashMap::new();
            for &t in &published {
                let key = self.term_ring(t);
                if let Ok(l) =
                    self.net
                        .lookup_fast_traced(owner_peer, key, Phase::Learn, tick, sink)
                {
                    by_peer.entry(l.owner.0).or_default().push(t);
                }
            }

            // Poll each peer, per indexing term (§5.3: "for each indexing
            // term, the indexing peer is polled to retrieve the query
            // metadata of that term"). A peer returns the queries newer
            // than the owner's per-term watermark for which that term is
            // the closest (by hash) of all the document's global terms —
            // the §3 deduplication. The owner additionally skips queries it
            // already processed through a previously published term.
            let global_pos: Vec<(TermId, RingId)> =
                published.iter().map(|&t| (t, self.term_ring(t))).collect();
            let mut incoming: Vec<Query> = Vec::new();
            let mut returned: u64 = 0;
            let mut returned_bytes: u64 = 0;
            // Poll in sorted peer order: the fold below is commutative, but
            // a fixed order keeps traces and the determinism audit exact.
            let mut by_peer: Vec<(u128, Vec<TermId>)> = by_peer.into_iter().collect();
            by_peer.sort_unstable_by_key(|&(p, _)| p);
            for (peer, terms) in &by_peer {
                self.net
                    .charge_traced(MsgKind::LearnPoll, Phase::Learn, tick, RingId(*peer), sink);
                report.polls += 1;
                let Some(st) = self.indexing.get(peer) else {
                    continue;
                };
                let owner = &mut self.owners[i];
                for &t in terms {
                    let since = owner.term_watermarks.get(&t).copied().unwrap_or(0);
                    for cached in st.queries_since(since) {
                        if !cached.query.contains(t) {
                            continue;
                        }
                        let closest = closest_global_term(&global_pos, &cached.query, cached.qhash);
                        if closest != Some(t) {
                            continue;
                        }
                        returned += 1;
                        returned_bytes += cached.query.wire_size() as u64;
                        if owner.seen.insert(cached.seq) {
                            incoming.push(cached.query.clone());
                        }
                    }
                }
            }
            report.queries_returned += incoming.len();
            self.net.charge_n_traced(
                MsgKind::LearnReturn,
                Phase::Learn,
                tick,
                owner_peer,
                returned,
                sink,
            );
            self.net
                .charge_bytes_traced(MsgKind::LearnReturn, returned_bytes, sink);
            {
                let owner = &mut self.owners[i];
                for &t in &published {
                    owner.term_watermarks.insert(t, seq_now);
                }
            }

            // Algorithm 1 with the grown budget.
            let budget = (published.len() + self.cfg.terms_per_iteration).min(self.cfg.max_terms);
            let new_terms = {
                let d = self.corpus.doc(doc);
                let owner = &mut self.owners[i];
                learn::update_stats(d, &mut owner.stats, &incoming);
                learn::select_terms_mode(
                    d,
                    &owner.stats,
                    budget,
                    &owner.excluded,
                    self.cfg.score_mode,
                )
            };

            // Publish the difference.
            let mut changed = false;
            for &t in &new_terms {
                if !published.contains(&t) {
                    self.publish_term_with(doc, t, Phase::Learn, tick, sink);
                    report.terms_added += 1;
                    changed = true;
                }
            }
            for &t in &published {
                if !new_terms.contains(&t) {
                    self.remove_term_with(doc, t, Phase::Learn, tick, sink);
                    report.terms_removed += 1;
                    changed = true;
                }
            }
            if changed {
                report.docs_changed += 1;
            }
            self.owners[i].published = new_terms;
            self.debug_validate_owner(doc);
        }
        report
    }

    /// Run `n` learning iterations, returning the reports.
    pub fn learn(&mut self, n: usize) -> Vec<LearnReport> {
        (0..n).map(|_| self.learning_iteration()).collect()
    }

    /// Indexed document frequency of `term` as seen by its responsible
    /// peer (0 when unreachable or never indexed). Resolves the peer with a
    /// routed lookup whose cost is discarded: this is a free diagnostic for
    /// tests and reports, not a network operation of the protocol.
    pub fn indexed_df(&mut self, term: TermId) -> usize {
        let key = self.term_ring(term);
        let mut scratch = NetStats::new();
        let Some(&from) = self.peers.first() else {
            return 0;
        };
        let Ok(lookup) = self.net.probe(from, key, &mut scratch) else {
            return 0;
        };
        self.indexing
            .get(&lookup.owner.0)
            .map_or(0, |st| st.indexed_df(term))
    }

    /// Direct access to an indexing peer's state (diagnostics / tests).
    #[must_use]
    pub fn indexing_state(&self, peer: RingId) -> Option<&IndexingState> {
        self.indexing.get(&peer.0)
    }

    /// Mutable access to an indexing peer's state — **corruption injection**
    /// for `sprite-audit` tests only (plant an unsorted or duplicated
    /// posting list and assert the checkers flag it).
    pub fn indexing_state_mut(&mut self, peer: RingId) -> Option<&mut IndexingState> {
        self.indexing.get_mut(&peer.0)
    }

    /// Overwrite the published-term list of `doc` without touching the
    /// distributed index — **corruption injection** for `sprite-audit`
    /// tests only (plants cap overruns and published-but-unindexed terms).
    pub fn inject_published(&mut self, doc: DocId, terms: Vec<TermId>) {
        self.owners[doc.index()].published = terms;
    }

    /// Peers currently holding any indexing-role state, in ring order
    /// (diagnostics and the `sprite-audit` checkers).
    #[must_use]
    pub fn indexing_peers(&self) -> Vec<RingId> {
        let mut peers: Vec<RingId> = self.indexing.keys().map(|&p| RingId(p)).collect();
        peers.sort_unstable();
        peers
    }

    /// Owner-side self-check run after every publish/refine pass in debug
    /// builds: the published set must respect the global-term cap, contain
    /// no duplicates, and never include an advisory-excluded term. The
    /// richer cross-layer checks live in `sprite-audit`'s `check_index`.
    fn debug_validate_owner(&self, doc: DocId) {
        let _ = doc; // used only when debug_assertions are on
        #[cfg(debug_assertions)]
        {
            let owner = &self.owners[doc.index()];
            debug_assert!(
                owner.published.len() <= self.cfg.max_terms,
                "doc {doc:?} publishes {} terms, cap {}",
                owner.published.len(),
                self.cfg.max_terms
            );
            let distinct: std::collections::HashSet<_> = owner.published.iter().collect();
            debug_assert_eq!(
                distinct.len(),
                owner.published.len(),
                "doc {doc:?} publishes duplicate terms"
            );
            debug_assert!(
                owner.published.iter().all(|t| !owner.excluded.contains(t)),
                "doc {doc:?} publishes an excluded term"
            );
        }
    }

    pub(crate) fn indexing_mut(&mut self) -> &mut HashMap<u128, IndexingState> {
        &mut self.indexing
    }

    pub(crate) fn owner_mut(&mut self, doc: DocId) -> &mut OwnerDoc {
        &mut self.owners[doc.index()]
    }

    /// Refresh the cached peer list after churn (drops dead issuing peers
    /// and the now-stale replica cache).
    pub fn refresh_peers(&mut self) {
        self.peers = self.net.node_ids();
        self.replica_cache.clear();
    }
}

/// The §3 deduplication rule: among the document's global index terms that
/// occur in the query, the one whose ring position is closest to the query's
/// hash (shorter of the two arc distances; ties broken by term id).
fn closest_global_term(
    global_pos: &[(TermId, RingId)],
    query: &Query,
    qhash: RingId,
) -> Option<TermId> {
    global_pos
        .iter()
        .filter(|(t, _)| query.contains(*t))
        .min_by_key(|(t, pos)| {
            let d = pos.distance_cw(qhash).min(qhash.distance_cw(*pos));
            (d, *t)
        })
        .map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};

    fn tiny_system(cfg: SpriteConfig) -> (SyntheticCorpus, SpriteSystem) {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(11));
        let sys = SpriteSystem::build(sc.corpus().clone(), 16, cfg, 11);
        (sc, sys)
    }

    #[test]
    fn publish_all_indexes_top_frequent_terms() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let doc = DocId(0);
        let published = sys.published_terms(doc).to_vec();
        assert_eq!(published.len(), 5);
        assert_eq!(
            published,
            sys.corpus().doc(doc).top_frequent_terms(5),
            "initial terms are the top-5 frequent"
        );
        // The index entry is reachable and carries the right metadata.
        for &t in &published {
            assert_eq!(sys.indexed_df(t).min(1), 1);
        }
        assert_eq!(sys.total_index_entries(), sys.corpus().len() * 5);
    }

    #[test]
    fn publish_all_is_idempotent() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let before = sys.total_index_entries();
        sys.publish_all();
        assert_eq!(sys.total_index_entries(), before);
    }

    #[test]
    fn remove_term_retracts_the_entry_and_bills_index_remove() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let doc = DocId(0);
        let term = sys.published_terms(doc)[0];
        let df_before = sys.indexed_df(term);
        let entries_before = sys.total_index_entries();
        assert!(df_before > 0, "published term must be indexed");
        sys.net_mut().reset_stats();
        sys.remove_term(doc, term);
        assert!(
            sys.net().stats().count(MsgKind::IndexRemove) > 0,
            "retraction must bill IndexRemove messages"
        );
        assert_eq!(sys.indexed_df(term), df_before - 1);
        assert_eq!(sys.total_index_entries(), entries_before - 1);
        // A removed entry is no longer retrievable.
        let hits = sys.issue_query(&Query::new(vec![term]), sys.corpus().len());
        assert!(
            hits.iter().all(|h| h.doc != doc),
            "retracted (doc, term) must not be retrieved"
        );
        // Removing an entry that is already gone is a no-op on the index.
        sys.remove_term(doc, term);
        assert_eq!(sys.total_index_entries(), entries_before - 1);
    }

    #[test]
    fn query_finds_documents_through_the_ring() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        // Query a term that is published for some document.
        let doc = DocId(3);
        let t = sys.published_terms(doc)[0];
        let all = sys.corpus().len();
        let hits = sys.issue_query(&Query::new(vec![t]), all);
        assert!(!hits.is_empty());
        assert!(
            hits.iter().any(|h| h.doc == doc),
            "doc 3 indexed on t must be retrieved"
        );
        // All hits actually contain the term.
        for h in &hits {
            assert!(sys.corpus().doc(h.doc).contains(t));
        }
    }

    #[test]
    fn unpublished_terms_are_invisible() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        // Find a term of doc 0 that was NOT published (rank > 5).
        let doc = sys.corpus().doc(DocId(0)).clone();
        let published = sys.published_terms(DocId(0)).to_vec();
        let hidden = doc
            .terms()
            .iter()
            .map(|&(t, _)| t)
            .find(|t| !published.contains(t))
            .expect("doc has more than 5 distinct terms");
        let hits = sys.issue_query(&Query::new(vec![hidden]), 100);
        assert!(
            hits.iter().all(|h| h.doc != DocId(0)),
            "unindexed term must not retrieve doc 0"
        );
    }

    #[test]
    fn queries_are_cached_at_indexing_peers() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let t = sys.published_terms(DocId(0))[0];
        let key = sys.term_ring(t);
        let peer = sys.net().oracle_owner(key).unwrap();
        let before = sys
            .indexing_state(peer)
            .map_or(0, IndexingState::cached_queries);
        sys.issue_query(&Query::new(vec![t]), 10);
        let after = sys.indexing_state(peer).unwrap().cached_queries();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn learning_grows_budget_and_uses_queries() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        // Issue queries combining a published term with an unpublished
        // high-value term of doc 0.
        let doc0 = sys.corpus().doc(DocId(0)).clone();
        let published = sys.published_terms(DocId(0)).to_vec();
        // Highest term id = deepest background rank = rare term, so doc 0
        // ranks well for it once indexed (low ids are corpus-wide noise).
        let hidden = doc0
            .terms()
            .iter()
            .map(|&(t, _)| t)
            .filter(|t| !published.contains(t))
            .max()
            .expect("unpublished term");
        let q = Query::new(vec![published[0], hidden]);
        for _ in 0..5 {
            sys.issue_query(&q, 10);
        }
        let report = sys.learning_iteration();
        assert!(report.queries_returned > 0, "queries must reach the owner");
        assert!(report.terms_added > 0);
        let now = sys.published_terms(DocId(0));
        assert!(now.len() > 5, "budget grew: {} terms", now.len());
        assert!(
            now.contains(&hidden),
            "the queried hidden term must now be indexed"
        );
        // And it is retrievable.
        let hits = sys.issue_query(&Query::new(vec![hidden]), 100);
        assert!(hits.iter().any(|h| h.doc == DocId(0)));
    }

    #[test]
    fn learning_respects_max_terms() {
        let cfg = SpriteConfig {
            max_terms: 8,
            ..SpriteConfig::default()
        };
        let (_sc, mut sys) = tiny_system(cfg);
        sys.publish_all();
        sys.learn(5);
        for i in 0..sys.corpus().len() {
            assert!(sys.published_terms(DocId(i as u32)).len() <= 8);
        }
    }

    #[test]
    fn esearch_config_never_learns() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::esearch(10));
        sys.publish_all();
        assert_eq!(sys.published_terms(DocId(0)).len(), 10);
        let entries = sys.total_index_entries();
        let report = sys.learning_iteration();
        assert_eq!(report, LearnReport::default());
        assert_eq!(sys.total_index_entries(), entries);
    }

    #[test]
    fn incremental_polling_does_not_recount_queries() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let t = sys.published_terms(DocId(0))[0];
        let q = Query::new(vec![t]);
        sys.issue_query(&q, 10);
        sys.learning_iteration();
        let qf_after_first = sys.owner_state(DocId(0)).stats.get(&t).map_or(0, |s| s.qf);
        // No new queries: a second iteration must not inflate QF.
        sys.learning_iteration();
        let qf_after_second = sys.owner_state(DocId(0)).stats.get(&t).map_or(0, |s| s.qf);
        assert_eq!(qf_after_first, qf_after_second);
    }

    #[test]
    fn closest_hash_dedup_returns_query_once() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        // A query containing TWO published terms of doc 0 is cached at two
        // peers but must be returned to the owner exactly once.
        let published = sys.published_terms(DocId(0)).to_vec();
        assert!(published.len() >= 2);
        let q = Query::new(vec![published[0], published[1]]);
        // Check the two terms actually live on different peers; otherwise
        // the dedup is trivially satisfied.
        let k0 = sys.term_ring(published[0]);
        let k1 = sys.term_ring(published[1]);
        let p0 = sys.net().oracle_owner(k0).unwrap();
        let p1 = sys.net().oracle_owner(k1).unwrap();
        sys.issue_query(&q, 10);
        let report = sys.learning_iteration();
        // The owner of doc 0 must have received this query exactly once.
        // (Other docs may legitimately receive it too if they also index
        // one of the two terms; count via doc 0's stats.)
        let qf0 = sys
            .owner_state(DocId(0))
            .stats
            .get(&published[0])
            .map_or(0, |s| s.qf);
        let qf1 = sys
            .owner_state(DocId(0))
            .stats
            .get(&published[1])
            .map_or(0, |s| s.qf);
        assert_eq!(
            qf0 + qf1,
            2,
            "each term of the query counted once (peers {p0:?}/{p1:?}, polls {})",
            report.polls
        );
    }

    #[test]
    fn closest_global_term_is_deterministic() {
        let global = vec![
            (TermId(1), RingId(100)),
            (TermId(2), RingId(200)),
            (TermId(3), RingId(300)),
        ];
        let q = Query::new(vec![TermId(1), TermId(3)]);
        // qhash at 290: closest of {100, 300} is 300 → TermId(3).
        assert_eq!(
            closest_global_term(&global, &q, RingId(290)),
            Some(TermId(3))
        );
        // qhash at 110: closest is 100 → TermId(1).
        assert_eq!(
            closest_global_term(&global, &q, RingId(110)),
            Some(TermId(1))
        );
        // Query with no global terms → None.
        let q2 = Query::new(vec![TermId(9)]);
        assert_eq!(closest_global_term(&global, &q2, RingId(0)), None);
    }

    #[test]
    fn search_by_words_roundtrip() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let t = sys.published_terms(DocId(1))[0];
        let word = sys.corpus().vocab().term(t).to_string();
        let hits = sys.search(&[word.as_str()], 20);
        assert!(hits.iter().any(|h| h.doc == DocId(1)));
        assert!(sys.search(&["no-such-word-exists"], 5).is_empty());
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        assert!(sys.issue_query(&Query::default(), 10).is_empty());
    }

    #[test]
    fn fail_peer_and_join_clear_the_replica_cache() {
        let cfg = SpriteConfig {
            replication: 3,
            ..SpriteConfig::default()
        };
        let (_sc, mut sys) = tiny_system(cfg);
        sys.publish_all();
        assert!(
            !sys.replica_cache.is_empty(),
            "publishing at degree 3 warms the cache"
        );
        let victim = *sys.peers().last().unwrap();
        assert!(sys.fail_peer(victim));
        assert!(
            sys.replica_cache.is_empty(),
            "fail_peer must drop the replica cache"
        );
        // Re-warm, then join: any membership change through net_mut
        // invalidates again.
        let t = sys.published_terms(DocId(0))[0];
        sys.publish_term(DocId(0), t);
        assert!(!sys.replica_cache.is_empty());
        let bootstrap = sys.peers()[0];
        let newcomer = RingId::hash_bytes(b"staleness-joiner");
        sys.net_mut().join(newcomer, bootstrap).unwrap();
        assert!(
            sys.replica_cache.is_empty(),
            "join must drop the replica cache"
        );
    }

    #[test]
    fn churned_query_never_reads_a_dead_replica_from_cache() {
        let cfg = SpriteConfig {
            replication: 3,
            ..SpriteConfig::default()
        };
        let (_sc, mut sys) = tiny_system(cfg);
        sys.publish_all();
        sys.replicate_indexes();
        let t = sys.published_terms(DocId(0))[0];
        let key = sys.term_ring(t);
        // Kill the term's responsible peer; the query path must fail over
        // to a replica through a *fresh* routed walk, never a cached set.
        let victim = sys.net().oracle_owner(key).unwrap();
        assert!(sys.fail_peer(victim));
        let hits = sys.issue_query(&Query::new(vec![t]), sys.corpus().len());
        assert!(
            hits.iter().any(|h| h.doc == DocId(0)),
            "failover must still retrieve doc 0"
        );
        // Re-publishing after the failure repopulates the cache; every set
        // resolved post-churn may only list live peers.
        sys.publish_term(DocId(0), t);
        for (k, replicas) in &sys.replica_cache {
            for r in replicas {
                assert!(
                    sys.net().contains(*r),
                    "cached replica set for key {k:#x} lists dead peer {r:?}"
                );
            }
        }
    }

    #[test]
    fn insert_document_publishes_and_retrieves_the_newcomer() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        // A fresh document reusing rare terms of the existing vocabulary.
        let rare = TermId((sys.corpus().vocab().len() - 1) as u32);
        let doc = sys.insert_document(vec![(rare, 9), (TermId(0), 1)]);
        assert_eq!(doc.index(), sys.corpus().len() - 1);
        assert!(!sys.is_deleted(doc));
        assert!(sys.live_docs().contains(&doc));
        let published = sys.published_terms(doc).to_vec();
        assert!(published.contains(&rare), "top-frequent term is published");
        let hits = sys.issue_query(&Query::new(vec![rare]), sys.corpus().len());
        assert!(
            hits.iter().any(|h| h.doc == doc),
            "inserted document must be retrievable by its published term"
        );
    }

    #[test]
    fn update_document_publishes_added_and_retracts_removed_terms_only() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let doc = DocId(0);
        let old = sys.published_terms(doc).to_vec();
        // New version: keep the two most frequent old terms, swap the rest
        // of the content for a rare fresh term.
        let keep: Vec<(TermId, u32)> = sys
            .corpus()
            .doc(doc)
            .top_frequent_terms(2)
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, 10 - i as u32))
            .collect();
        let fresh = TermId((sys.corpus().vocab().len() - 1) as u32);
        let mut terms = keep.clone();
        terms.push((fresh, 7));
        sys.net_mut().reset_stats();
        let report = sys.update_document(doc, terms);
        assert!(report.terms_kept >= 2, "shared top terms must be kept");
        assert!(report.terms_added >= 1, "the fresh term must be published");
        assert!(report.terms_removed >= 1, "vanished terms must go");
        // The diff is billed in both directions, not republished wholesale.
        let stats = sys.net().stats().clone();
        assert_eq!(
            stats.count(MsgKind::IndexPublish),
            report.terms_added as u64
        );
        assert_eq!(
            stats.count(MsgKind::IndexRemove),
            report.terms_removed as u64
        );
        // New terms retrieve the doc; removed ones no longer do.
        let hits = sys.issue_query(&Query::new(vec![fresh]), sys.corpus().len());
        assert!(hits.iter().any(|h| h.doc == doc));
        let gone = old
            .iter()
            .copied()
            .find(|t| !sys.published_terms(doc).contains(t))
            .expect("some old term was removed");
        let hits = sys.issue_query(&Query::new(vec![gone]), sys.corpus().len());
        assert!(
            hits.iter().all(|h| h.doc != doc),
            "a retracted term must not retrieve the old version"
        );
    }

    #[test]
    fn incremental_update_is_cheaper_than_full_republish() {
        let run = |incremental: bool| {
            let (_sc, mut sys) = tiny_system(SpriteConfig::default());
            sys.publish_all();
            let doc = DocId(0);
            // Small edit: original content plus one extra occurrence of a
            // rare term — most published terms survive the diff.
            let mut terms: Vec<(TermId, u32)> = sys.corpus().doc(doc).terms().to_vec();
            terms.push((TermId((sys.corpus().vocab().len() - 1) as u32), 6));
            sys.net_mut().reset_stats();
            if incremental {
                sys.update_document(doc, terms);
            } else {
                sys.republish_document(doc, terms);
            }
            let stats = sys.net().stats();
            stats.bytes(MsgKind::IndexPublish) + stats.bytes(MsgKind::IndexRemove)
        };
        let (incr, full) = (run(true), run(false));
        assert!(
            incr * 10 <= full * 7,
            "incremental update ({incr} B) must be ≥30% cheaper than \
             delete+republish ({full} B)"
        );
    }

    #[test]
    fn delete_document_hides_it_immediately_and_maintenance_reclaims() {
        let (_sc, mut sys) = tiny_system(SpriteConfig::default());
        sys.publish_all();
        let doc = DocId(0);
        let term = sys.published_terms(doc)[0];
        let retracted = sys.delete_document(doc);
        assert_eq!(retracted, 5);
        assert!(sys.is_deleted(doc));
        assert!(!sys.live_docs().contains(&doc));
        // Lazy mode: the entries are tombstoned, not yet rewritten …
        assert_eq!(sys.pending_tombstones(), 5);
        // … but the document is invisible to queries right now.
        let hits = sys.issue_query(&Query::new(vec![term]), sys.corpus().len());
        assert!(
            hits.iter().all(|h| h.doc != doc),
            "deleted document leaked into a live query result"
        );
        // One maintenance round reclaims every tombstone.
        let report = sys.maintenance_round();
        assert_eq!(report.tombstones_reclaimed, 5);
        assert_eq!(sys.pending_tombstones(), 0);
        // Deleting again is a no-op.
        assert_eq!(sys.delete_document(doc), 0);
        // Learning and republishing never resurrect the dead id.
        sys.publish_all();
        sys.learn(1);
        assert!(sys.published_terms(doc).is_empty());
        let hits = sys.issue_query(&Query::new(vec![term]), sys.corpus().len());
        assert!(hits.iter().all(|h| h.doc != doc));
    }

    #[test]
    fn eager_deletion_rewrites_lists_on_the_spot() {
        let cfg = SpriteConfig {
            lazy_tombstones: false,
            ..SpriteConfig::default()
        };
        let (_sc, mut sys) = tiny_system(cfg);
        sys.publish_all();
        let entries = sys.total_index_entries();
        sys.net_mut().reset_stats();
        let retracted = sys.delete_document(DocId(0));
        assert_eq!(retracted, 5);
        assert_eq!(sys.pending_tombstones(), 0, "eager mode leaves no debt");
        assert_eq!(sys.total_index_entries(), entries - 5);
        // The wire bill is identical to the lazy path: same removal
        // records, different local write strategy.
        assert_eq!(sys.net().stats().count(MsgKind::IndexRemove), 5);
    }

    #[test]
    fn lazy_and_eager_deletion_bill_identical_wire_traffic() {
        let run = |lazy: bool| {
            let cfg = SpriteConfig {
                lazy_tombstones: lazy,
                ..SpriteConfig::default()
            };
            let (_sc, mut sys) = tiny_system(cfg);
            sys.publish_all();
            sys.net_mut().reset_stats();
            sys.delete_document(DocId(3));
            let stats = sys.net().stats();
            (
                stats.count(MsgKind::IndexRemove),
                stats.bytes(MsgKind::IndexRemove),
            )
        };
        assert_eq!(run(true), run(false));
    }
}
