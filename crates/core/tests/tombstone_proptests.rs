//! Property-style tests for the tombstoned posting lists.
//!
//! Deterministic seeded loops (the workspace builds with an empty
//! registry, so no `proptest` crate): random interleavings of publish,
//! tombstone, eager-remove, and cleanup are replayed against a naive
//! vector model, on the plain and packed representations side by side —
//! every live-facing accessor must agree with the model at every step,
//! and a packed block must never rewrite bytes behind its append
//! watermark except through [`PostingList::cleanup`].

use sprite_core::{IndexEntry, PostingList};
use sprite_ir::DocId;
use sprite_util::{derive_rng, DetRng, RingId};

fn rng(label: &str) -> DetRng {
    derive_rng(0xC0DE, label)
}

fn entry(r: &mut DetRng, doc: u32) -> IndexEntry {
    IndexEntry {
        doc: DocId(doc),
        owner: RingId(u128::from(r.gen_u64())),
        tf: r.gen_range(1..50) as u32,
        doc_len: r.gen_range(10..500) as u32,
        distinct: r.gen_range(5..100) as u32,
    }
}

/// The naive model: every stored entry with its tombstone flag, sorted
/// by document id — the semantics the real representations must match.
#[derive(Default)]
struct Model {
    stored: Vec<(IndexEntry, bool)>,
}

impl Model {
    fn publish(&mut self, e: IndexEntry) {
        match self.stored.binary_search_by_key(&e.doc, |(s, _)| s.doc) {
            Ok(i) => self.stored[i] = (e, false),
            Err(i) => self.stored.insert(i, (e, false)),
        }
    }
    fn tombstone(&mut self, doc: DocId) -> bool {
        match self.stored.binary_search_by_key(&doc, |(s, _)| s.doc) {
            Ok(i) if !self.stored[i].1 => {
                self.stored[i].1 = true;
                true
            }
            _ => false,
        }
    }
    fn remove(&mut self, doc: DocId) -> bool {
        match self.stored.binary_search_by_key(&doc, |(s, _)| s.doc) {
            Ok(i) => {
                self.stored.remove(i);
                true
            }
            Err(_) => false,
        }
    }
    fn cleanup(&mut self) -> Vec<IndexEntry> {
        let (dead, live): (Vec<_>, Vec<_>) = self.stored.drain(..).partition(|(_, d)| *d);
        self.stored = live;
        dead.into_iter().map(|(e, _)| e).collect()
    }
    fn live(&self) -> Vec<IndexEntry> {
        self.stored
            .iter()
            .filter(|(_, d)| !d)
            .map(|(e, _)| *e)
            .collect()
    }
    fn dead_count(&self) -> usize {
        self.stored.iter().filter(|(_, d)| *d).count()
    }
}

fn check_agreement(list: &PostingList, model: &Model, step: usize) {
    let live = model.live();
    assert_eq!(list.len(), live.len(), "live count diverged at step {step}");
    assert_eq!(list.is_empty(), live.is_empty());
    assert_eq!(
        list.dead_count(),
        model.dead_count(),
        "tombstone debt diverged at step {step}"
    );
    assert_eq!(
        list.to_entries(),
        live,
        "live contents diverged at step {step} (packed: {})",
        list.is_packed()
    );
    // The iterator is the query path: same entries, already doc-sorted.
    let via_iter: Vec<IndexEntry> = list.iter().collect();
    assert_eq!(via_iter, live);
}

/// Random interleavings of every mutation, replayed on both
/// representations against the model: all live-facing accessors agree at
/// every step, and both representations reclaim the same entries in the
/// same order.
#[test]
fn random_interleavings_agree_with_the_naive_model() {
    let mut r = rng("interleave");
    for round in 0..64 {
        let mut plain = PostingList::new(false);
        let mut packed = PostingList::new(true);
        let mut model = Model::default();
        let doc_space = r.gen_range(4..24) as u32;
        let steps = r.gen_range(10..60);
        for step in 0..steps {
            let doc = r.gen_range(0..doc_space as usize) as u32;
            match r.gen_range(0..10) {
                // Publishing dominates, mixing in-order appends (fresh
                // high ids) with out-of-order splices and republishes.
                0..=4 => {
                    let e = entry(&mut r, doc);
                    plain.publish(e);
                    packed.publish(e);
                    model.publish(e);
                }
                5..=6 => {
                    let d = DocId(doc);
                    let a = plain.tombstone(d);
                    let b = packed.tombstone(d);
                    let m = model.tombstone(d);
                    assert_eq!(a, m, "plain tombstone verdict, round {round} step {step}");
                    assert_eq!(b, m, "packed tombstone verdict, round {round} step {step}");
                }
                7 => {
                    let d = DocId(doc);
                    let a = plain.remove(d);
                    let b = packed.remove(d);
                    let m = model.remove(d);
                    assert_eq!(a, m, "plain remove verdict, round {round} step {step}");
                    assert_eq!(b, m, "packed remove verdict, round {round} step {step}");
                }
                _ => {
                    let a = plain.cleanup();
                    let b = packed.cleanup();
                    let m = model.cleanup();
                    assert_eq!(a, m, "plain reclaim set, round {round} step {step}");
                    assert_eq!(b, m, "packed reclaim set, round {round} step {step}");
                }
            }
            check_agreement(&plain, &model, step);
            check_agreement(&packed, &model, step);
        }
    }
}

/// The packed append-only contract: between cleanups, in-order publishes
/// and tombstones only ever *extend* the encoded block — every byte
/// behind the watermark stays untouched. Only `cleanup` may rewrite.
#[test]
fn packed_bytes_are_append_only_until_cleanup() {
    let mut r = rng("watermark");
    for _ in 0..64 {
        let mut list = PostingList::new(true);
        let mut next_doc = 0u32;
        let mut snapshot: Vec<u8> = Vec::new();
        for _ in 0..r.gen_range(10..40) {
            if r.gen_range(0..4) < 3 || next_doc == 0 {
                // In-order publish: strictly ascending ids, the
                // bulk-publish fast path.
                next_doc += 1 + r.gen_range(0..3) as u32;
                list.publish(entry(&mut r, next_doc));
            } else {
                // Tombstone an already-published id: marks only.
                let victim = 1 + r.gen_range(0..next_doc as usize) as u32;
                list.tombstone(DocId(victim));
            }
            let bytes = list.packed_bytes().expect("packed list");
            assert!(
                bytes.len() >= snapshot.len() && bytes[..snapshot.len()] == snapshot[..],
                "a non-cleanup operation rewrote bytes behind the watermark"
            );
            snapshot = bytes.to_vec();
        }
        let had_debt = list.dead_count() > 0;
        let reclaimed = list.cleanup();
        assert_eq!(!reclaimed.is_empty(), had_debt);
        assert_eq!(list.dead_count(), 0);
        // After the rewrite the block re-encodes only live entries: a
        // second cleanup is a no-op on an already-clean block.
        let bytes_after = list.packed_bytes().expect("packed list").to_vec();
        assert!(list.cleanup().is_empty());
        assert_eq!(list.packed_bytes().expect("packed list"), &bytes_after[..]);
    }
}

/// Republishing a tombstoned document revives it in place: the tombstone
/// is shed, the fresh metadata wins, and a later cleanup reclaims
/// nothing for it — on both representations.
#[test]
fn republish_sheds_a_pending_tombstone() {
    let mut r = rng("revive");
    for _ in 0..64 {
        for packed in [false, true] {
            let mut list = PostingList::new(packed);
            let docs = r.gen_range(3..10) as u32;
            for d in 0..docs {
                list.publish(entry(&mut r, d));
            }
            let victim = DocId(r.gen_range(0..docs as usize) as u32);
            assert!(list.tombstone(victim));
            assert_eq!(list.dead_count(), 1);
            let revived = entry(&mut r, victim.0);
            list.publish(revived);
            assert_eq!(list.dead_count(), 0, "republish must shed the tombstone");
            assert!(list.to_entries().contains(&revived));
            assert!(list.cleanup().is_empty(), "nothing left to reclaim");
        }
    }
}
