//! The `sprite` command-line tool: inspect generated worlds, run the
//! paper's figures, search a live deployment, and print load reports —
//! all from one binary.
//!
//! ```text
//! sprite corpus  [--scale tiny|small|full] [--seed N]
//! sprite search  [--scale ...] [--seed N] [--learn N] <word>...
//! sprite figure  <4a|4b|4c> [--scale ...] [--seed N]
//! sprite load    [--scale ...] [--seed N] [--replication R]
//! ```

use std::process::ExitCode;

use sprite::core::{fig4a, fig4b, fig4c, SpriteConfig, World, WorldConfig};
use sprite::corpus::Schedule;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Args {
    command: Command,
    scale: Scale,
    seed: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum Command {
    Corpus,
    Search { learn: usize, words: Vec<String> },
    Figure(String),
    Load { replication: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Tiny,
    Small,
    Full,
}

const USAGE: &str = "\
sprite — learning-based text retrieval in DHT networks (ICDE 2007 reproduction)

USAGE:
  sprite corpus  [--scale tiny|small|full] [--seed N]
  sprite search  [--scale ...] [--seed N] [--learn N] <word>...
  sprite figure  <4a|4b|4c> [--scale ...] [--seed N]
  sprite load    [--scale ...] [--seed N] [--replication R]

OPTIONS:
  --scale        world size (default: tiny for corpus/search/load, small for figure)
  --seed N       master seed (default 42)
  --learn N      learning iterations before searching (default 3)
  --replication  index replication degree for the load report (default 1)
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter().peekable();
    let Some(cmd) = it.next() else {
        return Err("missing command".into());
    };
    let mut scale: Option<Scale> = None;
    let mut seed = 42u64;
    let mut learn = 3usize;
    let mut replication = 1usize;
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = Some(match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?}")),
                });
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--learn" => {
                learn = it
                    .next()
                    .ok_or("--learn needs a value")?
                    .parse()
                    .map_err(|_| "--learn must be an integer".to_string())?;
            }
            "--replication" => {
                replication = it
                    .next()
                    .ok_or("--replication needs a value")?
                    .parse()
                    .map_err(|_| "--replication must be an integer".to_string())?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    let command = match cmd.as_str() {
        "corpus" => Command::Corpus,
        "search" => {
            if positional.is_empty() {
                return Err("search needs at least one word".into());
            }
            Command::Search {
                learn,
                words: positional,
            }
        }
        "figure" => {
            let fig = positional
                .first()
                .ok_or("figure needs a panel: 4a, 4b, or 4c")?;
            if !matches!(fig.as_str(), "4a" | "4b" | "4c") {
                return Err(format!("unknown figure {fig:?} (expected 4a, 4b, or 4c)"));
            }
            Command::Figure(fig.clone())
        }
        "load" => Command::Load { replication },
        other => return Err(format!("unknown command {other:?}")),
    };
    let default_scale = match command {
        Command::Figure(_) => Scale::Small,
        _ => Scale::Tiny,
    };
    Ok(Args {
        command,
        scale: scale.unwrap_or(default_scale),
        seed,
    })
}

fn world_config(scale: Scale, seed: u64) -> WorldConfig {
    match scale {
        Scale::Tiny => WorldConfig::tiny(seed),
        Scale::Small => WorldConfig::small(seed),
        Scale::Full => WorldConfig {
            seed,
            ..WorldConfig::default()
        },
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    run(args);
    ExitCode::SUCCESS
}

fn run(args: Args) {
    let cfg = world_config(args.scale, args.seed);
    match args.command {
        Command::Corpus => {
            let world = World::build(cfg);
            let c = world.synthetic.corpus();
            println!(
                "documents: {}\nvocabulary: {} terms\ntopics: {} ({} queried)",
                c.len(),
                c.vocab().len(),
                world.config.corpus.n_topics,
                world.config.corpus.n_seed_queries,
            );
            let lens: Vec<f64> = c.docs().iter().map(|d| f64::from(d.len())).collect();
            let s: sprite::util::Summary = lens.iter().copied().collect();
            println!(
                "doc length: mean {:.1}, min {}, max {}",
                s.mean(),
                s.min(),
                s.max()
            );
            println!(
                "workload: {} queries ({} train / {} test)",
                world.workload.len(),
                world.train.len(),
                world.test.len()
            );
        }
        Command::Search { learn, words } => {
            let world = World::build(cfg);
            let mut sys = world.new_system(SpriteConfig::default());
            world.issue(&mut sys, &world.train, Schedule::WithoutRepeats);
            sys.publish_all();
            sys.learn(learn);
            let refs: Vec<&str> = words.iter().map(String::as_str).collect();
            let hits = sys.search(&refs, 10);
            if hits.is_empty() {
                println!("no results for {words:?} (unknown or unindexed terms)");
            } else {
                println!("top {} results for {words:?}:", hits.len());
                for (i, h) in hits.iter().enumerate() {
                    println!("  {:>2}. doc {:<6} score {:.4}", i + 1, h.doc.0, h.score);
                }
            }
            let st = sys.net().stats();
            println!(
                "({} messages total, {:.1} mean lookup hops)",
                st.total_messages(),
                st.mean_hops()
            );
        }
        Command::Figure(which) => {
            let world = World::build(cfg);
            match which.as_str() {
                "4a" => {
                    let f = fig4a(&world, &[5, 10, 15, 20, 25, 30]);
                    println!("answers  SPRITE-P  eSearch-P  SPRITE-R  eSearch-R");
                    for (s, e) in f.sprite.iter().zip(&f.esearch) {
                        println!(
                            "{:>7}  {:>8.3}  {:>9.3}  {:>8.3}  {:>9.3}",
                            s.x, s.precision, e.precision, s.recall, e.recall
                        );
                    }
                }
                "4b" => {
                    let f = fig4b(&world, &[5, 10, 15, 20, 25, 30], 20);
                    println!("terms  SPRITE-w/o-r  SPRITE-w-zipf  eSearch");
                    for i in 0..f.esearch.len() {
                        println!(
                            "{:>5}  {:>12.3}  {:>13.3}  {:>7.3}",
                            f.esearch[i].x,
                            f.sprite_wor[i].precision,
                            f.sprite_zipf[i].precision,
                            f.esearch[i].precision
                        );
                    }
                }
                "4c" => {
                    let f = fig4c(&world, 10, 20);
                    println!("iter  SPRITE-P  eSearch-P   (switch at {})", f.switch_at);
                    for (s, e) in f.sprite.iter().zip(&f.esearch) {
                        println!("{:>4}  {:>8.3}  {:>9.3}", s.x, s.precision, e.precision);
                    }
                }
                _ => unreachable!("validated by parse_args"),
            }
        }
        Command::Load { replication } => {
            let world = World::build(cfg);
            let mut sys = world.new_system(SpriteConfig {
                replication,
                ..SpriteConfig::default()
            });
            sys.publish_all();
            if replication > 1 {
                sys.replicate_indexes();
            }
            let report = sys.load_report();
            println!("peer                 terms  entries  cached  max-df");
            for p in &report.peers {
                println!(
                    "{:<20} {:>5}  {:>7}  {:>6}  {:>6}",
                    format!("{:?}", p.peer),
                    p.terms,
                    p.entries,
                    p.cached_queries,
                    p.max_term_df
                );
            }
            println!(
                "\nentry Gini: {:.3}   hottest term df: {}",
                report.entry_gini, report.hottest_df
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_corpus_defaults() {
        let a = parse_args(&argv("corpus")).unwrap();
        assert_eq!(a.command, Command::Corpus);
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_search_with_flags() {
        let a = parse_args(&argv("search --scale small --seed 7 --learn 5 foo bar")).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seed, 7);
        assert_eq!(
            a.command,
            Command::Search {
                learn: 5,
                words: vec!["foo".into(), "bar".into()]
            }
        );
    }

    #[test]
    fn figure_defaults_to_small_scale() {
        let a = parse_args(&argv("figure 4a")).unwrap();
        assert_eq!(a.command, Command::Figure("4a".into()));
        assert_eq!(a.scale, Scale::Small);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("search")).is_err(), "search needs words");
        assert!(parse_args(&argv("figure 9z")).is_err());
        assert!(parse_args(&argv("corpus --scale galactic")).is_err());
        assert!(parse_args(&argv("corpus --seed NaN")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("corpus --unknown")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn load_parses_replication() {
        let a = parse_args(&argv("load --replication 3")).unwrap();
        assert_eq!(a.command, Command::Load { replication: 3 });
    }
}
