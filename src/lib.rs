//! SPRITE — Selective PRogressive Index Tuning by Examples.
//!
//! Facade crate re-exporting the whole SPRITE stack. A reproduction of
//! *"SPRITE: A Learning-Based Text Retrieval System in DHT Networks"*
//! (Li, Jagadish, Tan — ICDE 2007).
//!
//! See the individual crates for the subsystems:
//!
//! * [`util`] — MD5, ring identifiers, Zipf sampling, top-k, statistics.
//! * [`text`] — tokenizer, stop words, Porter stemmer.
//! * [`ir`] — corpus model, centralized TF·IDF engine, evaluation metrics.
//! * [`chord`] — the Chord DHT simulator.
//! * [`corpus`] — synthetic corpus and the paper's query generator.
//! * [`core`] — the SPRITE system itself plus the eSearch baseline.
//! * [`audit`] — structural invariant checkers and the determinism auditor.
//!
//! # Quickstart
//!
//! ```
//! use sprite::core::{SpriteConfig, SpriteSystem};
//! use sprite::corpus::{CorpusConfig, SyntheticCorpus};
//! use sprite::ir::DocId;
//!
//! // A tiny world: 200 documents, 32 peers.
//! let world = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
//! let mut system = SpriteSystem::build(world.corpus().clone(), 32, SpriteConfig::default(), 7);
//! system.publish_all();
//!
//! // Search for the first published term of document 0.
//! let term = system.published_terms(DocId(0))[0];
//! let word = system.corpus().vocab().term(term).to_string();
//! let hits = system.search(&[word.as_str()], 10);
//! assert!(!hits.is_empty() && hits.len() <= 10);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use sprite_audit as audit;
pub use sprite_chord as chord;
pub use sprite_core as core;
pub use sprite_corpus as corpus;
pub use sprite_ir as ir;
pub use sprite_text as text;
pub use sprite_util as util;
